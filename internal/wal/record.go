package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk framing. Every segment and snapshot file starts with an
// 8-byte magic, followed by length-prefixed, CRC32C-checksummed records:
//
//	[4B little-endian payload length][4B CRC32C(payload)][payload]
//
// Empty payloads are forbidden: a run of zero bytes must never parse as
// an endless stream of valid empty records, so length 0 is corruption by
// definition and recovery truncates there.
const (
	segMagic  = "TDACWAL\x01"
	snapMagic = "TDACSNP\x01"
	magicLen  = 8
	headerLen = 8

	// MaxRecordBytes bounds a single record so a corrupt length field can
	// never drive an absurd allocation during recovery.
	MaxRecordBytes = 64 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64, and the checksum most storage formats settled on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sealFlag marks a seal frame: rotation terminates a finished segment
// with one so recovery can tell a sealed segment from one whose tail
// was lost. The flag lives in the high bit of the length field, which
// MaxRecordBytes keeps free, and the CRC slot carries a fixed sentinel
// so a seal can never be confused with record framing.
const sealFlag = 1 << 31

var sealCRC = crc32.Checksum([]byte("TDACSEAL"), castagnoli)

// appendSeal appends the seal frame that marks a segment complete.
func appendSeal(dst []byte) []byte {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], sealFlag)
	binary.LittleEndian.PutUint32(hdr[4:8], sealCRC)
	return append(dst, hdr[:]...)
}

// ErrRecordTooLarge reports an append beyond MaxRecordBytes.
var ErrRecordTooLarge = errors.New("wal: record exceeds size limit")

// appendFrame appends the framed form of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// checkAppendable validates a payload before it is framed.
func checkAppendable(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("wal: empty records are not appendable")
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	return nil
}

// scanFrames parses framed records from data (magic already stripped),
// stopping at the first corrupt record: a torn header, a length of zero
// or beyond the remaining bytes or MaxRecordBytes, or a checksum
// mismatch. It returns the valid prefix, whether a seal frame
// terminated the segment, and whether the whole input was consumed
// cleanly. Anything after a seal is corruption.
func scanFrames(data []byte) (records [][]byte, sealed, clean bool) {
	for len(data) > 0 {
		if len(data) < headerLen {
			return records, false, false
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		if n&sealFlag != 0 {
			if n != sealFlag || crc != sealCRC || len(data) != headerLen {
				return records, false, false
			}
			return records, true, true
		}
		if n == 0 || n > MaxRecordBytes || int(n) > len(data)-headerLen {
			return records, false, false
		}
		payload := data[headerLen : headerLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return records, false, false
		}
		records = append(records, payload)
		data = data[headerLen+int(n):]
	}
	return records, false, true
}
