package wal

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// SegmentInfo describes one on-disk WAL file for the replication
// shipping API (DESIGN.md §14): enough for a follower to decide what to
// fetch and to verify what it fetched. All byte-derived fields cover the
// file's valid prefix only — a torn suffix past the last intact frame is
// excluded, exactly as recovery would exclude it.
type SegmentInfo struct {
	// Seq is the file's sequence number; Name its on-disk file name.
	Seq  uint64 `json:"seq"`
	Name string `json:"name"`
	// Sealed reports a seal frame terminates the segment: its bytes are
	// final and will never grow. Snapshots are always final.
	Sealed bool `json:"sealed"`
	// Records counts intact records in the file (a snapshot holds 1).
	Records int `json:"records"`
	// First and Last are this file's 1-based record indexes counted from
	// the newest snapshot baseline, both 0 when the file holds none.
	First uint64 `json:"first"`
	Last  uint64 `json:"last"`
	// CRC is the CRC32C of the valid prefix (magic, frames and, when
	// sealed, the seal frame); Size is that prefix's byte length.
	CRC  uint32 `json:"crc"`
	Size int64  `json:"size"`
}

// Manifest is a point-in-time listing of the log's replayable files:
// the newest valid snapshot (nil when none) and every segment after it
// in ascending sequence order, including the unsealed active tail.
type Manifest struct {
	Snapshot *SegmentInfo  `json:"snapshot,omitempty"`
	Segments []SegmentInfo `json:"segments"`
}

// Segments lists the log's current replayable files. The listing is
// consistent with what Open would recover at this instant: superseded
// and corrupt files are omitted, an unsealed tail contributes its
// longest valid frame prefix, and record indexes restart at 1 after
// each snapshot. Unsynced appends are visible (the follower's recovery
// tolerates losing them to a crash, like the primary's own does).
func (l *Log) Segments() (Manifest, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Manifest{}, ErrClosed
	}
	fsys := l.opts.FS
	names, err := fsys.ReadDir(l.dir)
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	var segs, snaps []uint64
	for _, name := range names {
		seq, kind, ok := parseSeq(name)
		if !ok {
			continue
		}
		if kind == "seg" {
			segs = append(segs, seq)
		} else {
			snaps = append(snaps, seq)
		}
	}

	var m Manifest
	var snapSeq uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := fsys.ReadFile(filepath.Join(l.dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		if _, ok := parseSnapshot(data); !ok {
			continue
		}
		m.Snapshot = &SegmentInfo{
			Seq:     snaps[i],
			Name:    snapName(snaps[i]),
			Sealed:  true,
			Records: 1,
			First:   0,
			Last:    0,
			CRC:     crc32.Checksum(data, castagnoli),
			Size:    int64(len(data)),
		}
		snapSeq = snaps[i]
		break
	}

	var index uint64 // records replayed since the snapshot baseline
	for _, seq := range segs {
		if m.Snapshot != nil && seq <= snapSeq {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(l.dir, segName(seq)))
		if err != nil {
			continue
		}
		if len(data) < magicLen || string(data[:magicLen]) != segMagic {
			continue
		}
		frames, sealed, _ := scanFrames(data[magicLen:])
		valid := int64(magicLen)
		for _, f := range frames {
			valid += int64(len(f)) + headerLen
		}
		if sealed {
			valid += headerLen
		}
		info := SegmentInfo{
			Seq:     seq,
			Name:    segName(seq),
			Sealed:  sealed,
			Records: len(frames),
			CRC:     crc32.Checksum(data[:valid], castagnoli),
			Size:    valid,
		}
		if len(frames) > 0 {
			info.First = index + 1
			info.Last = index + uint64(len(frames))
			index = info.Last
		}
		m.Segments = append(m.Segments, info)
	}
	return m, nil
}

// ParseFileName reports whether name is a WAL segment ("seg") or
// snapshot ("snap") file name, and its sequence number. Replication
// mirrors use it to tell WAL files from foreign ones when pruning.
func ParseFileName(name string) (seq uint64, kind string, ok bool) {
	return parseSeq(name)
}

// ReadRaw returns the raw on-disk bytes of one WAL file by its manifest
// name. The bytes may extend past the manifest's valid prefix (an
// unsealed tail growing under concurrent appends, or a torn suffix);
// the consumer truncates at the first corrupt frame, exactly as
// recovery does.
func (l *Log) ReadRaw(name string) ([]byte, error) {
	if _, _, ok := parseSeq(name); !ok {
		return nil, fmt.Errorf("wal: %q is not a WAL file name", name)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	data, err := l.opts.FS.ReadFile(filepath.Join(l.dir, name))
	if err != nil {
		return nil, err
	}
	return data, nil
}
