package core

import (
	"context"
	"fmt"

	"tdac/internal/obs"
	"tdac/internal/partition"
	"tdac/internal/truthdata"
)

// Stability quantifies how much TD-AC's selected partition depends on the
// k-means seeding — the practical diagnostic behind the paper's claim of
// finding "an optimal partition or a near-optimal one": a high mean Rand
// index across reseeded runs means the silhouette landscape has one clear
// optimum; a low one warns that the clustering signal is weak (as on the
// sparse Exam data) and the partition should not be over-trusted.
type Stability struct {
	// Partitions holds the partition selected under each seed.
	Partitions []partition.Partition
	// Silhouettes holds each run's best silhouette value.
	Silhouettes []float64
	// MeanRandIndex is the mean pairwise Rand index across the runs.
	MeanRandIndex float64
	// Modal is the most frequent partition (ties: first seen).
	Modal partition.Partition
	// ModalShare is the fraction of runs selecting Modal.
	ModalShare float64
	// Stats is the observation tree collected by the attached Recorder
	// across the whole check — one reference/truth-vectors prologue plus
	// one distance-matrix/k-sweep pair per reseeded run. nil when no
	// Recorder was set.
	Stats *obs.RunStats
}

// CheckStability runs TD-AC's partition-selection stage under `runs`
// different k-means seeds (derived from the configured seed) and reports
// agreement. The reference truth is computed once; only the clustering is
// reseeded, so the cost is runs × (k-sweep), not runs × (full TD-AC).
func (t *TDAC) CheckStability(d *truthdata.Dataset, runs int) (*Stability, error) {
	return t.CheckStabilityContext(context.Background(), d, runs)
}

// CheckStabilityContext is CheckStability under a context: cancellation
// aborts between reseeded runs and inside each run's k-sweep.
func (t *TDAC) CheckStabilityContext(ctx context.Context, d *truthdata.Dataset, runs int) (*Stability, error) {
	if t.Base == nil {
		return nil, errNoBase
	}
	if runs < 2 {
		return nil, fmt.Errorf("core: stability needs at least 2 runs, got %d", runs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec := t.Recorder
	rec.Start()

	ref := t.Reference
	if ref == nil {
		ref = t.Base
	}
	phaseDone := rec.Phase(obs.PhaseReference)
	refResult, err := ref.Discover(d)
	if err != nil {
		return nil, fmt.Errorf("core: reference run (%s): %w", ref.Name(), err)
	}
	phaseDone()
	phaseDone = rec.Phase(obs.PhaseTruthVectors)
	tv := BuildTruthVectors(d, refResult.Truth, t.Masked)
	phaseDone()

	st := &Stability{}
	baseSeed := t.KMeans.Seed
	if baseSeed == 0 {
		baseSeed = 1
	}
	for i := 0; i < runs; i++ {
		variant := *t
		variant.KMeans.Seed = baseSeed + int64(i)*15485863
		// Force the seed to matter even when a custom Clusterer is set:
		// stability of a deterministic clusterer is trivially 1.
		part, sil, _, err := variant.SelectPartition(ctx, tv, d.NumAttrs())
		if err != nil {
			return nil, err
		}
		st.Partitions = append(st.Partitions, part)
		st.Silhouettes = append(st.Silhouettes, sil)
	}

	// Mean pairwise Rand index.
	var sum float64
	pairs := 0
	for i := 0; i < runs; i++ {
		for j := i + 1; j < runs; j++ {
			sum += partition.RandIndex(st.Partitions[i], st.Partitions[j])
			pairs++
		}
	}
	if pairs > 0 {
		st.MeanRandIndex = sum / float64(pairs)
	}

	// Modal partition by canonical string.
	counts := map[string]int{}
	first := map[string]partition.Partition{}
	for _, p := range st.Partitions {
		key := p.String()
		counts[key]++
		if _, ok := first[key]; !ok {
			first[key] = p
		}
	}
	bestKey, bestCount := "", 0
	for _, p := range st.Partitions {
		key := p.String()
		if counts[key] > bestCount {
			bestKey, bestCount = key, counts[key]
		}
	}
	st.Modal = first[bestKey]
	st.ModalShare = float64(bestCount) / float64(runs)
	st.Stats = rec.Finish()
	return st, nil
}
