package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/obs"
	"tdac/internal/partition"
	"tdac/internal/truthdata"
)

// TDAC is the paper's Algorithm 1. It wraps a base truth discovery
// algorithm F: a reference truth from one run of the reference algorithm
// feeds the attribute truth vectors, k-means plus the silhouette index
// pick the best attribute partition, and F runs once per group before the
// partial results are merged.
//
// The zero value is not usable: Base is required. All other fields have
// sensible defaults.
type TDAC struct {
	// Base is F, the algorithm run on each group of the chosen partition.
	Base algorithms.Algorithm
	// Reference produces the reference truth behind the truth vectors.
	// Defaults to Base, as in the paper's experiments; MajorityVote is a
	// cheaper alternative studied in the reference ablation.
	Reference algorithms.Algorithm
	// Distance scores clusterings in the silhouette index and assigns
	// points in k-means. Defaults to Hamming (the paper's Equation 2).
	Distance clustering.Distance
	// KMeans configures the clustering; its Distance field is overridden
	// by the field above. The zero value works.
	KMeans clustering.KMeans
	// Clusterer, when non-nil, replaces k-means entirely (e.g. an
	// agglomerative clusterer); the silhouette-based k selection still
	// applies.
	Clusterer clustering.Clusterer
	// MinK and MaxK bound the explored cluster counts. Defaults follow
	// Algorithm 1: [2, |A|-1]. MaxK may exceed |A|-1; it is clipped.
	// Negative bounds, an explicitly inverted pair, or an explicit MinK
	// no dataset attribute count can satisfy are rejected with an error
	// (they used to skip the sweep silently and return the whole set as
	// if it had been chosen).
	MinK, MaxK int
	// Search selects the k-selection strategy over [MinK, MaxK]:
	//
	//   - "" or SearchExhaustive: the paper's exhaustive sweep — every k
	//     is clustered and scored (bit-identical to all prior releases);
	//   - SearchGolden: golden-section search over the silhouette-vs-k
	//     curve with an envelope early stop, seeding each probed k-means
	//     from a cut of one shared agglomerative dendrogram;
	//   - SearchMDL: ascending scan with an MDL-based patience stopping
	//     rule, same dendrogram warm start.
	//
	// Both sublinear strategies probe O(log(MaxK-MinK)) to O(best k)
	// cluster counts instead of all of them and leave holes in the
	// Explored table; the selected partition is still the best
	// silhouette among the probed ks. They require the built-in KMeans
	// clusterer and an unmasked encoding (the dendrogram warm start
	// averages points into centroids, which mask markers do not
	// survive). See DESIGN.md §16.
	Search string
	// Masked switches the truth vectors and default distance to the
	// sparse-aware encoding (future-work item (i)).
	Masked bool
	// Parallel runs F on the partition's groups concurrently
	// (future-work item (ii)). Groups are independent after partitioning,
	// so the per-group base runs drain through a worker pool bounded by
	// Workers; results are bit-identical to the sequential order because
	// each group writes only its own slot.
	Parallel bool
	// Workers bounds the two worker pools of a run: the independent
	// k-means + silhouette evaluations of the k-sweep, and (with
	// Parallel) the per-group base runs. 0 means runtime.GOMAXPROCS(0);
	// 1 forces sequential execution. Every k-sweep worker derives its
	// randomness from the configured base seed independently of
	// scheduling order, so results are bit-identical to the sequential
	// sweep. A custom Clusterer must be safe for concurrent Cluster
	// calls when Workers exceeds 1 (both KMeans and Agglomerative are);
	// base algorithms already must be, per the Algorithm contract.
	Workers int
	// ProjectDim, when positive, reduces the truth vectors to this many
	// dimensions with a Johnson–Lindenstrauss random projection before
	// clustering — the running-time optimisation of future-work item
	// (ii) for large |O|·|S|. Projection implies Euclidean geometry, so
	// it overrides the default Hamming distance and is incompatible with
	// Masked.
	ProjectDim int
	// Recorder, when non-nil, collects phase-scoped run statistics
	// (wall times, per-k convergence, per-group base-run cost, cache
	// reuse, allocation deltas) into an obs.RunStats tree exposed on the
	// Outcome. A Recorder is single-use: attach a fresh one per
	// RunContext or CheckStabilityContext call. Observation never alters
	// results — an observed run is bit-identical to an unobserved one
	// (TestStatsObservationIsInert). nil (the default) disables
	// collection at the cost of one pointer check per phase boundary.
	Recorder *obs.Recorder
}

// New returns a TD-AC wrapping base with paper defaults.
func New(base algorithms.Algorithm) *TDAC { return &TDAC{Base: base} }

// Name implements algorithms.Algorithm; it matches the paper's
// "TD-AC (F=Accu)" notation.
func (t *TDAC) Name() string {
	if t.Base == nil {
		return "TD-AC"
	}
	return fmt.Sprintf("TD-AC (F=%s)", t.Base.Name())
}

// KScore records the quality of one explored cluster count.
type KScore struct {
	K          int
	Silhouette float64
	Inertia    float64
}

// Outcome extends the base Result with everything TD-AC decided along the
// way, for Table 5-style reporting and debugging.
type Outcome struct {
	*algorithms.Result
	// Partition is the attribute partition TD-AC selected.
	Partition partition.Partition
	// Silhouette is the silhouette value of the selected partition.
	Silhouette float64
	// Explored lists the score of every k tried, ascending k.
	Explored []KScore
	// ReferenceResult is the full result of the reference run, whose
	// truth seeded the attribute truth vectors.
	ReferenceResult *algorithms.Result
	// Sparsity is the missing-coordinate rate of the truth vectors
	// (only non-zero with Masked).
	Sparsity float64
	// Stats is the observation tree collected by the attached Recorder;
	// nil when no Recorder was set.
	Stats *obs.RunStats
}

var errNoBase = errors.New("core: TDAC requires a Base algorithm")

// The k-selection strategies of the Search field.
const (
	// SearchExhaustive scores every k in [MinK, MaxK] (the default).
	SearchExhaustive = "exhaustive"
	// SearchGolden is golden-section search with an envelope early stop.
	SearchGolden = "golden"
	// SearchMDL is an ascending scan with an MDL patience stopping rule.
	SearchMDL = "mdl"
)

// resolveSearch validates the Search field against the rest of the
// configuration and returns the canonical strategy name.
func (t *TDAC) resolveSearch() (string, error) {
	switch t.Search {
	case "", SearchExhaustive:
		return SearchExhaustive, nil
	case SearchGolden, SearchMDL:
		if t.Clusterer != nil {
			return "", fmt.Errorf("core: Search %q requires the built-in KMeans clusterer (the dendrogram warm start seeds k-means, not a custom Clusterer)", t.Search)
		}
		if t.Masked {
			return "", fmt.Errorf("core: Search %q is incompatible with Masked (the dendrogram warm start averages mask markers into centroids)", t.Search)
		}
		return t.Search, nil
	default:
		return "", fmt.Errorf("core: unknown Search strategy %q (known: %q, %q, %q)", t.Search, SearchExhaustive, SearchGolden, SearchMDL)
	}
}

// Discover implements algorithms.Algorithm.
func (t *TDAC) Discover(d *truthdata.Dataset) (*algorithms.Result, error) {
	out, err := t.Run(d)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Run executes Algorithm 1 and returns the full outcome.
func (t *TDAC) Run(d *truthdata.Dataset) (*Outcome, error) {
	return t.RunContext(context.Background(), d)
}

// RunContext executes Algorithm 1 under a context. Cancellation is
// honoured between the major stages, at every k of the k-sweep, before
// every per-group base run, and — for the built-in indexed algorithms —
// at every update round inside the reference and base runs, so a
// deadline interrupts even a slow single algorithm promptly.
func (t *TDAC) RunContext(ctx context.Context, d *truthdata.Dataset) (*Outcome, error) {
	start := time.Now()
	if t.Base == nil {
		return nil, errNoBase
	}
	if len(d.Claims) == 0 {
		return nil, algorithms.ErrEmptyDataset
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rec := t.Recorder
	rec.Start()

	ref := t.Reference
	if ref == nil {
		ref = t.Base
	}
	// Compile the claim index once up front; it is cached on the dataset,
	// so the reference run and every projection-free consumer reuse it.
	phaseDone := rec.Phase(obs.PhaseIndex)
	d.Index()
	phaseDone()

	phaseDone = rec.Phase(obs.PhaseReference)
	refResult, err := algorithms.DiscoverContext(ctx, ref, d)
	if err != nil {
		return nil, fmt.Errorf("core: reference run (%s): %w", ref.Name(), err)
	}
	phaseDone()

	phaseDone = rec.Phase(obs.PhaseTruthVectors)
	tv := BuildTruthVectors(d, refResult.Truth, t.Masked)
	phaseDone()
	part, sil, explored, err := t.SelectPartition(ctx, tv, d.NumAttrs())
	if err != nil {
		return nil, err
	}

	res, err := t.discoverOnPartition(ctx, d, part)
	if err != nil {
		return nil, err
	}
	res.Algorithm = t.Name()
	// The paper reports TD-AC as a single-iteration procedure: the outer
	// loop of Algorithm 1 never revisits the data.
	res.Iterations = 1
	res.Runtime = time.Since(start)

	return &Outcome{
		Result:          res,
		Partition:       part,
		Silhouette:      sil,
		Explored:        explored,
		ReferenceResult: refResult,
		Sparsity:        tv.Sparsity(),
		Stats:           rec.Finish(),
	}, nil
}

// FindPartition runs only the partition-selection half of TD-AC (reference
// run, truth vectors, k search) and returns the chosen partition with its
// silhouette value.
func (t *TDAC) FindPartition(d *truthdata.Dataset) (partition.Partition, float64, error) {
	return t.FindPartitionContext(context.Background(), d)
}

// FindPartitionContext is FindPartition under a context; cancellation
// aborts the k-sweep at k granularity.
func (t *TDAC) FindPartitionContext(ctx context.Context, d *truthdata.Dataset) (partition.Partition, float64, error) {
	if t.Base == nil {
		return nil, 0, errNoBase
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	ref := t.Reference
	if ref == nil {
		ref = t.Base
	}
	refResult, err := algorithms.DiscoverContext(ctx, ref, d)
	if err != nil {
		return nil, 0, fmt.Errorf("core: reference run (%s): %w", ref.Name(), err)
	}
	tv := BuildTruthVectors(d, refResult.Truth, t.Masked)
	part, sil, _, err := t.SelectPartition(ctx, tv, d.NumAttrs())
	return part, sil, err
}

// workerCount resolves the k-sweep pool size.
func (t *TDAC) workerCount() int {
	if t.Workers > 0 {
		return t.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SelectPartition explores k in [MinK, MaxK] as in Algorithm 1 lines
// 4–18 over prebuilt truth vectors and returns the partition with the
// highest silhouette value, its silhouette, and the full Explored table.
// When the range is empty (fewer than 3 attributes) the whole attribute
// set stays one group, making TD-AC degrade to a plain run of F.
//
// This is the clustering hot path, rebuilt in three layers: binary truth
// vectors are packed into bit-planes so every pairwise distance is a
// popcount kernel; one flat upper-triangular distance matrix is shared
// by k-means++ seeding and the silhouette index across all explored k;
// and the independent per-k evaluations run on a bounded worker pool
// (see Workers). Each k draws its randomness from the base seed alone,
// never from scheduling order, and the best k is resolved in ascending
// order afterwards, so the outcome is bit-identical to the sequential
// sweep. Cancellation is honoured at k granularity.
func (t *TDAC) SelectPartition(ctx context.Context, tv *TruthVectors, nAttrs int) (partition.Partition, float64, []KScore, error) {
	if _, err := t.resolveSearch(); err != nil {
		return nil, 0, nil, err
	}
	minK, maxK, err := t.kRange(nAttrs)
	if err != nil {
		return nil, 0, nil, err
	}
	if minK > maxK {
		return partition.Whole(nAttrs), 0, nil, nil
	}
	g, err := t.buildGeometry(tv)
	if err != nil {
		return nil, 0, nil, err
	}
	return t.selectOverGeometry(ctx, g, minK, maxK)
}

// selectOverGeometry dispatches the k-selection strategy over a prebuilt
// geometry. It is the single entry shared by the cold path
// (SelectPartition) and the incremental path (RunWithState), so every
// strategy — exhaustive sweep or sublinear search — composes with both.
func (t *TDAC) selectOverGeometry(ctx context.Context, g *geometry, minK, maxK int) (partition.Partition, float64, []KScore, error) {
	strategy, err := t.resolveSearch()
	if err != nil {
		return nil, 0, nil, err
	}
	if strategy == SearchExhaustive {
		return t.sweepPartition(ctx, g, minK, maxK)
	}
	return t.searchPartition(ctx, g, minK, maxK, strategy)
}

// kRange resolves the explored cluster-count bounds for nAttrs
// attributes. Invalid explicit bounds — negative values, an inverted
// pair, a MinK above nAttrs-1 — are errors; they used to collapse to an
// empty range that silently skipped the sweep and returned the whole
// attribute set as if it had been chosen. The documented silent degrade
// survives only for the default range on datasets with fewer than three
// attributes, where minK > maxK still means "nothing to search".
func (t *TDAC) kRange(nAttrs int) (minK, maxK int, err error) {
	if t.MinK < 0 || t.MaxK < 0 {
		return 0, 0, fmt.Errorf("core: k range [%d,%d]: bounds cannot be negative", t.MinK, t.MaxK)
	}
	if t.MinK > 0 && t.MaxK > 0 && t.MinK > t.MaxK {
		return 0, 0, fmt.Errorf("core: inverted k range [%d,%d]: MinK exceeds MaxK", t.MinK, t.MaxK)
	}
	if t.MinK >= 2 && t.MinK > nAttrs-1 {
		return 0, 0, fmt.Errorf("core: MinK %d exceeds the largest usable cluster count %d (|A|-1 of %d attributes)", t.MinK, nAttrs-1, nAttrs)
	}
	minK = t.MinK
	if minK < 2 {
		minK = 2
	}
	maxK = t.MaxK
	if maxK == 0 || maxK > nAttrs-1 {
		maxK = nAttrs - 1
	}
	return minK, maxK, nil
}

// geometry is the clustering input SelectPartition derives from the
// truth vectors once per run: the (possibly projected) vectors, the
// resolved distance, and the packed planes plus shared flat distance
// matrix when the popcount kernels apply. The incremental path keeps a
// geometry alive across dataset versions and repairs only dirty rows,
// then feeds it to the same sweep.
type geometry struct {
	tv         *TruthVectors
	dist       clustering.Distance
	packed     *clustering.PackedVectors
	distMatrix *clustering.DistMatrix
}

// buildGeometry resolves projection and distance defaults for tv and
// materialises the packed planes and shared distance matrix.
func (t *TDAC) buildGeometry(tv *TruthVectors) (*geometry, error) {
	if t.ProjectDim > 0 {
		if t.Masked {
			return nil, fmt.Errorf("core: ProjectDim is incompatible with Masked (the mask markers do not survive projection)")
		}
		seed := t.KMeans.Seed
		if seed == 0 {
			seed = 1
		}
		projected, err := clustering.RandomProjection(tv.Vectors, t.ProjectDim, seed)
		if err != nil {
			return nil, fmt.Errorf("core: projecting truth vectors: %w", err)
		}
		tv = &TruthVectors{Vectors: projected, Dim: len(projected[0])}
	}

	dist := t.Distance
	if dist == nil {
		switch {
		case t.Masked:
			dist = clustering.MaskedHamming{Mask: Missing}
		case t.ProjectDim > 0:
			dist = clustering.Euclidean{}
		default:
			dist = clustering.Hamming{}
		}
	}

	rec := t.Recorder
	matrixDone := rec.Phase(obs.PhaseDistanceMatrix)

	// Pack the truth vectors into bit-planes whenever the distance is one
	// the popcount kernels reproduce exactly; fractional or foreign
	// encodings fall back to the float kernels.
	var packed *clustering.PackedVectors
	switch dd := dist.(type) {
	case clustering.Hamming:
		packed, _ = clustering.PackBinary(tv.Vectors)
	case clustering.MaskedHamming:
		packed, _ = clustering.PackMasked(tv.Vectors, dd.Mask)
	}

	// The silhouette of every explored k — and, on binary vectors,
	// k-means++ seeding — reuses one pairwise distance matrix over the
	// attribute truth vectors, computed once per Discover call.
	var distMatrix *clustering.DistMatrix
	if packed != nil {
		distMatrix = clustering.NewDistMatrixPacked(packed)
	} else {
		distMatrix = clustering.NewDistMatrix(tv.Vectors, dist)
	}
	matrixDone()
	rec.MatrixDone(obs.MatrixStats{
		Points: distMatrix.N,
		Pairs:  len(distMatrix.Tri),
		Packed: packed != nil,
		Masked: packed != nil && packed.Masked(),
	})
	return &geometry{tv: tv, dist: dist, packed: packed, distMatrix: distMatrix}, nil
}

// sweepPartition runs the k-sweep of Algorithm 1 lines 4–18 over a
// prebuilt geometry. It is shared verbatim by the cold path (geometry
// built fresh by buildGeometry) and the incremental path (geometry
// maintained across versions by an IncrementalState): identical
// geometry in, bit-identical partition out.
func (t *TDAC) sweepPartition(ctx context.Context, g *geometry, minK, maxK int) (partition.Partition, float64, []KScore, error) {
	tv, dist, packed, distMatrix := g.tv, g.dist, g.packed, g.distMatrix
	rec := t.Recorder

	newClusterer := func() clustering.Clusterer {
		if t.Clusterer != nil {
			return t.Clusterer
		}
		km := t.KMeans
		km.Distance = dist
		if packed != nil && !packed.Masked() {
			// On binary vectors the Hamming matrix entries equal the
			// squared Euclidean distances k-means++ samples from.
			km.SeedSqDists = distMatrix
		}
		return &km
	}

	type kResult struct {
		clustering *clustering.Clustering
		sil        float64
		dur        time.Duration
		err        error
	}
	numK := maxK - minK + 1
	results := make([]kResult, numK)
	sweepDone := rec.Phase(obs.PhaseKSweep)
	evalK := func(clusterer clustering.Clusterer, i int) {
		var t0 time.Time
		if rec.Enabled() {
			t0 = time.Now()
		}
		k := minK + i
		c, err := clusterer.Cluster(tv.Vectors, k)
		if err != nil {
			results[i] = kResult{err: fmt.Errorf("core: clustering with k=%d: %w", k, err)}
			return
		}
		sil := clustering.SilhouetteFromDistMatrix(distMatrix, c.Assign, k)
		results[i] = kResult{clustering: c, sil: sil}
		// Stream the explored k immediately (completion order); the
		// deterministic per-k table still arrives in bulk via SweepDone.
		rec.KDone(k, sil)
		if rec.Enabled() {
			results[i].dur = time.Since(t0)
		}
	}

	workers := t.workerCount()
	if workers > numK {
		workers = numK
	}
	if workers <= 1 {
		clusterer := newClusterer()
		for i := 0; i < numK; i++ {
			if err := ctx.Err(); err != nil {
				return nil, 0, nil, err
			}
			evalK(clusterer, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				clusterer := newClusterer()
				for {
					i := int(next.Add(1)) - 1
					if i >= numK || ctx.Err() != nil {
						return
					}
					evalK(clusterer, i)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, 0, nil, err
		}
	}

	// Resolve errors and the best silhouette in ascending k, exactly as
	// the sequential loop would.
	var (
		best     partition.Partition
		bestSil  float64
		haveBest bool
		explored []KScore
	)
	for i := 0; i < numK; i++ {
		r := &results[i]
		if r.err != nil {
			return nil, 0, nil, r.err
		}
		k := minK + i
		explored = append(explored, KScore{K: k, Silhouette: r.sil, Inertia: r.clustering.Inertia})
		if !haveBest || r.sil > bestSil {
			haveBest = true
			bestSil = r.sil
			best = partition.FromAssign(r.clustering.Assign, k)
		}
	}
	sweepDone()
	if rec.Enabled() {
		seed := t.KMeans.Seed
		if seed == 0 {
			seed = 1
		}
		maxIter := t.KMeans.MaxIterations
		if maxIter == 0 {
			maxIter = 100
		}
		ss := obs.SweepStats{
			Seed:    seed,
			Workers: workers,
			MinK:    minK,
			MaxK:    maxK,
			Ks:      make([]obs.KStats, 0, numK),
		}
		for i := range results {
			r := &results[i]
			ss.Duration += r.dur
			ss.Ks = append(ss.Ks, obs.KStats{
				K:          minK + i,
				Duration:   r.dur,
				Iterations: r.clustering.Iterations,
				Converged:  r.clustering.Iterations < maxIter,
				Silhouette: r.sil,
				Inertia:    r.clustering.Inertia,
			})
		}
		rec.SweepDone(ss, t.cacheStats(packed, numK))
	}
	return best, bestSil, explored, nil
}

// cacheStats derives the distance-matrix reuse counters of one sweep:
// every silhouette evaluation reads the shared matrix, and k-means++
// seeding reads it instead of scanning vectors whenever the packed dense
// path is active (see KMeans.SeedSqDists).
func (t *TDAC) cacheStats(packed *clustering.PackedVectors, numK int) obs.CacheStats {
	cs := obs.CacheStats{SilhouetteEvals: numK}
	seeded := t.Clusterer == nil &&
		packed != nil && !packed.Masked() &&
		!t.KMeans.DisableAccel &&
		t.KMeans.Init == clustering.InitKMeansPlusPlus
	if seeded {
		restarts := t.KMeans.Restarts
		if restarts == 0 {
			restarts = 4
		}
		cs.SeededRuns = restarts * numK
	}
	return cs
}

// discoverOnPartition runs F on every group's projection of the data and
// merges the partial truths, trusts and confidences back into one result
// keyed by the original attribute ids (Algorithm 1 lines 20–24). A
// cancelled context stops further groups from starting and, for the
// built-in indexed algorithms, interrupts in-flight runs at their next
// update round; the error is returned once the pool drains.
func (t *TDAC) discoverOnPartition(ctx context.Context, d *truthdata.Dataset, part partition.Partition) (*algorithms.Result, error) {
	type partial struct {
		res     *algorithms.Result
		backMap []truthdata.AttrID
		claims  int
		err     error
	}
	partials := make([]partial, len(part))
	rec := t.Recorder

	runGroup := func(gi int, group []truthdata.AttrID) {
		if ctx.Err() != nil {
			return
		}
		var t0 time.Time
		if rec.Enabled() {
			t0 = time.Now()
		}
		sub, backMap := d.Project(group)
		if len(sub.Claims) == 0 {
			partials[gi] = partial{backMap: backMap}
			return
		}
		res, err := algorithms.DiscoverContext(ctx, t.Base, sub)
		partials[gi] = partial{res: res, backMap: backMap, claims: len(sub.Claims), err: err}
		if rec.Enabled() && err == nil {
			rec.GroupDone(obs.GroupStats{
				Group:      gi,
				Attrs:      len(group),
				Claims:     len(sub.Claims),
				Iterations: res.Iterations,
				Duration:   time.Since(t0),
			})
		}
	}

	baseDone := rec.Phase(obs.PhaseBaseRuns)
	rec.SetParallelGroups(t.Parallel && len(part) > 1)
	if t.Parallel {
		// Bounded pool, same atomic-counter pattern as the k-sweep:
		// groups are claimed in index order, each writes only its own
		// partials slot, so the merged result is bit-identical to the
		// sequential order regardless of scheduling.
		workers := t.workerCount()
		if workers > len(part) {
			workers = len(part)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					gi := int(next.Add(1)) - 1
					if gi >= len(part) || ctx.Err() != nil {
						return
					}
					runGroup(gi, part[gi])
				}
			}()
		}
		wg.Wait()
	} else {
		for gi, group := range part {
			runGroup(gi, group)
		}
	}
	baseDone()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	mergeDone := rec.Phase(obs.PhaseMerge)
	merged := &algorithms.Result{
		Truth:      make(map[truthdata.Cell]string),
		Confidence: make(map[truthdata.Cell]float64),
		Trust:      make([]float64, d.NumSources()),
		Converged:  true,
	}
	weights := make([]float64, d.NumSources())
	totalClaims := 0
	for gi := range partials {
		p := &partials[gi]
		if p.err != nil {
			return nil, fmt.Errorf("core: base run on group %d: %w", gi, p.err)
		}
		if p.res == nil {
			continue
		}
		for cell, v := range p.res.Truth {
			orig := truthdata.Cell{Object: cell.Object, Attr: p.backMap[cell.Attr]}
			merged.Truth[orig] = v
			if c, ok := p.res.Confidence[cell]; ok {
				merged.Confidence[orig] = c
			}
		}
		// Per-source trust merges as a claim-weighted mean across groups.
		w := float64(p.claims)
		for s, tr := range p.res.Trust {
			merged.Trust[s] += tr * w
			weights[s] += w
		}
		totalClaims += p.claims
		if p.res.Iterations > merged.Iterations {
			merged.Iterations = p.res.Iterations
		}
		merged.Converged = merged.Converged && p.res.Converged
	}
	for s := range merged.Trust {
		if weights[s] > 0 {
			merged.Trust[s] /= weights[s]
		}
	}
	mergeDone()
	if totalClaims == 0 {
		return nil, algorithms.ErrEmptyDataset
	}
	return merged, nil
}

// RunOnPartition runs the base algorithm on a caller-supplied attribute
// partition and merges the results, skipping TD-AC's partition search
// entirely. It is the building block for domain-aware upper bounds: when
// the true attribute grouping is known (a planted partition, documented
// domains), this is the best any partitioning strategy can do with F.
func RunOnPartition(base algorithms.Algorithm, d *truthdata.Dataset, part partition.Partition) (*algorithms.Result, error) {
	if base == nil {
		return nil, errNoBase
	}
	if len(d.Claims) == 0 {
		return nil, algorithms.ErrEmptyDataset
	}
	if part.Size() != d.NumAttrs() {
		return nil, fmt.Errorf("core: partition covers %d attrs, dataset has %d", part.Size(), d.NumAttrs())
	}
	t := &TDAC{Base: base}
	start := time.Now()
	res, err := t.discoverOnPartition(context.Background(), d, part.Canonical())
	if err != nil {
		return nil, err
	}
	res.Algorithm = fmt.Sprintf("%s on %s", base.Name(), part)
	res.Iterations = 1
	res.Runtime = time.Since(start)
	return res, nil
}
