package core

import (
	"context"
	"testing"

	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/partition"
	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

// seedSelectPartition reimplements the k-sweep exactly as the repository's
// original (pre-packed-kernel) code did: sequential loop over k, the
// unaccelerated float k-means, a dense [][]float64 distance matrix and
// SilhouetteFromMatrix. The rebuilt SelectPartition must reproduce it bit
// for bit.
func seedSelectPartition(t *TDAC, tv *TruthVectors, nAttrs int) (partition.Partition, float64, []KScore) {
	minK := t.MinK
	if minK < 2 {
		minK = 2
	}
	maxK := t.MaxK
	if maxK == 0 || maxK > nAttrs-1 {
		maxK = nAttrs - 1
	}
	if minK > maxK {
		return partition.Whole(nAttrs), 0, nil
	}
	dist := t.Distance
	if dist == nil {
		if t.Masked {
			dist = clustering.MaskedHamming{Mask: Missing}
		} else {
			dist = clustering.Hamming{}
		}
	}
	km := t.KMeans
	km.Distance = dist
	km.DisableAccel = true
	distMatrix := clustering.DistanceMatrix(tv.Vectors, dist)
	var (
		best     partition.Partition
		bestSil  float64
		haveBest bool
		explored []KScore
	)
	for k := minK; k <= maxK; k++ {
		c, err := km.Cluster(tv.Vectors, k)
		if err != nil {
			panic(err)
		}
		sil := clustering.SilhouetteFromMatrix(distMatrix, c.Assign, k)
		explored = append(explored, KScore{K: k, Silhouette: sil, Inertia: c.Inertia})
		if !haveBest || sil > bestSil {
			haveBest = true
			bestSil = sil
			best = partition.FromAssign(c.Assign, k)
		}
	}
	return best, bestSil, explored
}

// sweepTruthVectors builds the truth vectors a TD-AC run would cluster on
// for the given synthetic config.
func sweepTruthVectors(t *testing.T, cfg synth.Config, masked bool) (*truthdata.Dataset, *TruthVectors) {
	t.Helper()
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := algorithms.NewMajorityVote().Discover(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	return g.Dataset, BuildTruthVectors(g.Dataset, ref.Truth, masked)
}

// TestKSweepMatchesSeedImplementation is the PR's acceptance gate: the
// packed + shared-matrix + pooled sweep must return bit-identical
// partitions, silhouettes and Explored tables to the original sequential
// byte-vector implementation, for every paper config and several seeds,
// whether it runs on one worker or many.
func TestKSweepMatchesSeedImplementation(t *testing.T) {
	configs := map[string]synth.Config{
		"DS1": synth.DS1().Scaled(60),
		"DS2": synth.DS2().Scaled(60),
		"DS3": synth.DS3().Scaled(60),
	}
	for name, cfg := range configs {
		// More attributes than the paper's 6 gives the sweep a real k
		// range (k in [2, |A|-1]).
		cfg.Attrs = 12
		cfg.GroupSizes = []int{4, 4, 2, 2}
		d, tv := sweepTruthVectors(t, cfg, false)
		for seed := int64(1); seed <= 5; seed++ {
			ref := &TDAC{Base: algorithms.NewMajorityVote()}
			ref.KMeans.Seed = seed
			wantPart, wantSil, wantExplored := seedSelectPartition(ref, tv, d.NumAttrs())

			for _, workers := range []int{1, 4} {
				got := &TDAC{Base: algorithms.NewMajorityVote(), Workers: workers}
				got.KMeans.Seed = seed
				part, sil, explored, err := got.SelectPartition(context.Background(), tv, d.NumAttrs())
				if err != nil {
					t.Fatal(err)
				}
				if !part.Equal(wantPart) {
					t.Fatalf("%s seed %d workers %d: partition %v, seed impl %v",
						name, seed, workers, part, wantPart)
				}
				if sil != wantSil {
					t.Fatalf("%s seed %d workers %d: silhouette %v, seed impl %v",
						name, seed, workers, sil, wantSil)
				}
				if len(explored) != len(wantExplored) {
					t.Fatalf("%s seed %d workers %d: %d explored, seed impl %d",
						name, seed, workers, len(explored), len(wantExplored))
				}
				for i := range wantExplored {
					if explored[i] != wantExplored[i] {
						t.Fatalf("%s seed %d workers %d: explored[%d] = %+v, seed impl %+v",
							name, seed, workers, i, explored[i], wantExplored[i])
					}
				}
			}
		}
	}
}

// TestKSweepMatchesSeedImplementationMasked repeats the equivalence on the
// sparse-aware encoding, which exercises the two-plane packed kernel and
// keeps k-means++ on its scan path (the rescaled masked distance is not a
// squared Euclidean distance).
func TestKSweepMatchesSeedImplementationMasked(t *testing.T) {
	cfg := synth.DS2().Scaled(50)
	cfg.Attrs = 10
	cfg.GroupSizes = []int{4, 3, 3}
	cfg.Coverage = 0.6
	d, tv := sweepTruthVectors(t, cfg, true)
	for seed := int64(1); seed <= 3; seed++ {
		ref := &TDAC{Base: algorithms.NewMajorityVote(), Masked: true}
		ref.KMeans.Seed = seed
		wantPart, wantSil, wantExplored := seedSelectPartition(ref, tv, d.NumAttrs())
		for _, workers := range []int{1, 4} {
			got := &TDAC{Base: algorithms.NewMajorityVote(), Masked: true, Workers: workers}
			got.KMeans.Seed = seed
			part, sil, explored, err := got.SelectPartition(context.Background(), tv, d.NumAttrs())
			if err != nil {
				t.Fatal(err)
			}
			if !part.Equal(wantPart) || sil != wantSil {
				t.Fatalf("masked seed %d workers %d: (%v, %v), seed impl (%v, %v)",
					seed, workers, part, sil, wantPart, wantSil)
			}
			for i := range wantExplored {
				if explored[i] != wantExplored[i] {
					t.Fatalf("masked seed %d workers %d: explored[%d] differs", seed, workers, i)
				}
			}
		}
	}
}

// TestRunParallelSweepMatchesSequential drives the full pipeline end to
// end: a Run with the pooled sweep must produce the same truth, partition
// and silhouette as the single-worker run. This test also exercises the
// worker pool under the race detector.
func TestRunParallelSweepMatchesSequential(t *testing.T) {
	cfg := synth.DS2().Scaled(60)
	cfg.Attrs = 10
	cfg.GroupSizes = []int{4, 3, 3}
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := &TDAC{Base: algorithms.NewAccu(), Workers: 1}
	par := &TDAC{Base: algorithms.NewAccu(), Workers: 4}
	seqOut, err := seq.Run(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := par.Run(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if !parOut.Partition.Equal(seqOut.Partition) {
		t.Fatalf("partition %v vs sequential %v", parOut.Partition, seqOut.Partition)
	}
	if parOut.Silhouette != seqOut.Silhouette {
		t.Fatalf("silhouette %v vs sequential %v", parOut.Silhouette, seqOut.Silhouette)
	}
	if len(parOut.Truth) != len(seqOut.Truth) {
		t.Fatalf("truth sizes %d vs %d", len(parOut.Truth), len(seqOut.Truth))
	}
	for cell, v := range seqOut.Truth {
		if parOut.Truth[cell] != v {
			t.Fatalf("truth[%v] = %q vs sequential %q", cell, parOut.Truth[cell], v)
		}
	}
}

// TestContextCancellationIsPrompt verifies every context-aware entry point
// refuses to start work under an already-cancelled context.
func TestContextCancellationIsPrompt(t *testing.T) {
	cfg := synth.DS1().Scaled(20)
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	td := New(algorithms.NewMajorityVote())
	if _, err := td.RunContext(ctx, g.Dataset); err != context.Canceled {
		t.Errorf("RunContext: %v, want context.Canceled", err)
	}
	if _, _, err := td.FindPartitionContext(ctx, g.Dataset); err != context.Canceled {
		t.Errorf("FindPartitionContext: %v, want context.Canceled", err)
	}
	if _, err := td.CheckStabilityContext(ctx, g.Dataset, 3); err != context.Canceled {
		t.Errorf("CheckStabilityContext: %v, want context.Canceled", err)
	}
	ref, err := algorithms.NewMajorityVote().Discover(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	tv := BuildTruthVectors(g.Dataset, ref.Truth, false)
	for _, workers := range []int{1, 4} {
		td.Workers = workers
		if _, _, _, err := td.SelectPartition(ctx, tv, g.Dataset.NumAttrs()); err != context.Canceled {
			t.Errorf("SelectPartition (workers=%d): %v, want context.Canceled", workers, err)
		}
	}
}

// TestStabilityUsesPooledSweep pins that CheckStability runs through the
// same rebuilt sweep and stays deterministic across worker counts.
func TestStabilityUsesPooledSweep(t *testing.T) {
	cfg := synth.DS1().Scaled(40)
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := &TDAC{Base: algorithms.NewMajorityVote(), Workers: 1}
	par := &TDAC{Base: algorithms.NewMajorityVote(), Workers: 4}
	a, err := seq.CheckStability(g.Dataset, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.CheckStability(g.Dataset, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRandIndex != b.MeanRandIndex || a.ModalShare != b.ModalShare {
		t.Fatalf("stability differs across worker counts: (%v,%v) vs (%v,%v)",
			a.MeanRandIndex, a.ModalShare, b.MeanRandIndex, b.ModalShare)
	}
	for i := range a.Partitions {
		if !a.Partitions[i].Equal(b.Partitions[i]) {
			t.Fatalf("run %d: partition %v vs %v", i, a.Partitions[i], b.Partitions[i])
		}
	}
}
