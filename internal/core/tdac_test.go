package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/metrics"
	"tdac/internal/partition"
	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

func smallDS1(t testing.TB) (*truthdata.Dataset, partition.Partition) {
	t.Helper()
	g, err := synth.Generate(synth.DS2().Scaled(120))
	if err != nil {
		t.Fatal(err)
	}
	return g.Dataset, g.Planted
}

func TestTDACRequiresBase(t *testing.T) {
	d, _ := smallDS1(t)
	tdac := &TDAC{}
	if _, err := tdac.Run(d); err == nil {
		t.Error("Run without Base succeeded")
	}
	if _, _, err := tdac.FindPartition(d); err == nil {
		t.Error("FindPartition without Base succeeded")
	}
}

func TestTDACEmptyDataset(t *testing.T) {
	d := &truthdata.Dataset{Name: "empty", Sources: []string{"s"}, Objects: []string{"o"}, Attrs: []string{"a", "b", "c"}}
	tdac := New(algorithms.NewMajorityVote())
	if _, err := tdac.Run(d); !errors.Is(err, algorithms.ErrEmptyDataset) {
		t.Errorf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestTDACName(t *testing.T) {
	if got := New(algorithms.NewAccu()).Name(); got != "TD-AC (F=Accu)" {
		t.Errorf("Name = %q", got)
	}
	if got := (&TDAC{}).Name(); got != "TD-AC" {
		t.Errorf("baseless Name = %q", got)
	}
}

func TestTDACRecoversPlantedPartition(t *testing.T) {
	d, planted := smallDS1(t)
	tdac := New(algorithms.NewAccu())
	out, err := tdac.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Partition.Equal(planted) {
		t.Errorf("partition = %s, want planted %s", out.Partition, planted)
	}
	if out.Silhouette <= 0 {
		t.Errorf("silhouette = %v, want > 0", out.Silhouette)
	}
}

func TestTDACImprovesOnBase(t *testing.T) {
	d, _ := smallDS1(t)
	base := algorithms.NewAccu()
	baseRes, err := base.Discover(d)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(algorithms.NewAccu()).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := metrics.Evaluate(d, baseRes.Truth).Accuracy
	tdacAcc := metrics.Evaluate(d, out.Truth).Accuracy
	if tdacAcc < baseAcc {
		t.Errorf("TD-AC accuracy %v below base %v on structurally correlated data", tdacAcc, baseAcc)
	}
}

func TestTDACResultShape(t *testing.T) {
	d, _ := smallDS1(t)
	out, err := New(algorithms.NewAccu()).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1 (paper's single-pass)", out.Iterations)
	}
	if len(out.Truth) != len(d.Cells()) {
		t.Errorf("predicted %d cells, want %d", len(out.Truth), len(d.Cells()))
	}
	if len(out.Trust) != d.NumSources() {
		t.Errorf("trust entries = %d, want %d", len(out.Trust), d.NumSources())
	}
	if out.ReferenceResult == nil {
		t.Error("ReferenceResult missing")
	}
	if len(out.Explored) == 0 {
		t.Error("Explored k scores missing")
	}
	for i, ks := range out.Explored {
		if ks.K != i+2 {
			t.Errorf("Explored[%d].K = %d, want %d", i, ks.K, i+2)
		}
		if ks.Inertia < 0 {
			t.Errorf("negative inertia at k=%d", ks.K)
		}
	}
	if out.Runtime <= 0 {
		t.Error("Runtime not recorded")
	}
}

func TestTDACFewAttributesFallsBackToWholeSet(t *testing.T) {
	b := truthdata.NewBuilder("two-attrs")
	b.Claim("s1", "o", "a1", "x")
	b.Claim("s2", "o", "a1", "y")
	b.Claim("s1", "o", "a2", "x")
	d := b.MustBuild()
	out, err := New(algorithms.NewMajorityVote()).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Partition) != 1 {
		t.Errorf("partition = %s, want single whole group", out.Partition)
	}
	if out.Partition.Size() != 2 {
		t.Errorf("partition covers %d attrs, want 2", out.Partition.Size())
	}
}

func TestTDACParallelMatchesSequential(t *testing.T) {
	d, _ := smallDS1(t)
	seq, err := New(algorithms.NewAccu()).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	par := New(algorithms.NewAccu())
	par.Parallel = true
	parOut, err := par.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Partition.Equal(parOut.Partition) {
		t.Fatalf("parallel found different partition")
	}
	for cell, v := range seq.Truth {
		if parOut.Truth[cell] != v {
			t.Fatalf("parallel differs at %v", cell)
		}
	}
}

func TestTDACDeterministic(t *testing.T) {
	d, _ := smallDS1(t)
	r1, err := New(algorithms.NewAccu()).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(algorithms.NewAccu()).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Partition.Equal(r2.Partition) || r1.Silhouette != r2.Silhouette {
		t.Error("TD-AC is not deterministic")
	}
}

func TestTDACCustomKRange(t *testing.T) {
	d, _ := smallDS1(t)
	tdac := New(algorithms.NewMajorityVote())
	tdac.MinK = 3
	tdac.MaxK = 3
	out, err := tdac.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Explored) != 1 || out.Explored[0].K != 3 {
		t.Errorf("Explored = %+v, want only k=3", out.Explored)
	}
	if len(out.Partition) != 3 {
		t.Errorf("partition has %d groups, want 3", len(out.Partition))
	}
}

func TestTDACMaskedMode(t *testing.T) {
	d, _ := smallDS1(t)
	tdac := New(algorithms.NewMajorityVote())
	tdac.Masked = true
	out, err := tdac.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sparsity != 0 {
		// DS2 at full coverage: no missing claims, sparsity 0.
		t.Errorf("Sparsity = %v, want 0 at full coverage", out.Sparsity)
	}
	if len(out.Truth) == 0 {
		t.Error("masked mode produced no predictions")
	}
}

func TestTDACMaskedModeSparseData(t *testing.T) {
	g, err := synth.Generate(synth.Config{
		Name: "sparse", Attrs: 6, Objects: 60, Sources: 8,
		M1: 1, M2: 0, M3: 1, Coverage: 0.5, Seed: 5, FalseValues: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	tdac := New(algorithms.NewMajorityVote())
	tdac.Masked = true
	out, err := tdac.Run(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sparsity < 0.3 || out.Sparsity > 0.7 {
		t.Errorf("Sparsity = %v, want ≈ 0.5", out.Sparsity)
	}
}

func TestTDACCustomReference(t *testing.T) {
	d, _ := smallDS1(t)
	tdac := New(algorithms.NewAccu())
	tdac.Reference = algorithms.NewMajorityVote()
	out, err := tdac.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.ReferenceResult.Algorithm != "MajorityVote" {
		t.Errorf("reference algorithm = %q, want MajorityVote", out.ReferenceResult.Algorithm)
	}
}

func TestTDACCustomDistance(t *testing.T) {
	d, _ := smallDS1(t)
	tdac := New(algorithms.NewMajorityVote())
	tdac.Distance = clustering.Euclidean{}
	if _, err := tdac.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestTDACDiscoverInterface(t *testing.T) {
	d, _ := smallDS1(t)
	var alg algorithms.Algorithm = New(algorithms.NewMajorityVote())
	res, err := alg.Discover(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "TD-AC (F=MajorityVote)" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}

func TestTDACMergedTruthMatchesPerGroupRuns(t *testing.T) {
	// Integration invariant: the merged result must equal running the
	// base algorithm manually on each group's projection.
	d, _ := smallDS1(t)
	base := algorithms.NewAccu()
	out, err := New(base).Run(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range out.Partition {
		sub, backMap := d.Project(group)
		res, err := base.Discover(sub)
		if err != nil {
			t.Fatal(err)
		}
		for cell, v := range res.Truth {
			orig := truthdata.Cell{Object: cell.Object, Attr: backMap[cell.Attr]}
			if out.Truth[orig] != v {
				t.Fatalf("merged truth differs from group run at %v", orig)
			}
		}
	}
}

func TestTDACWithAgglomerativeClusterer(t *testing.T) {
	d, planted := smallDS1(t)
	tdac := New(algorithms.NewAccu())
	tdac.Clusterer = &clustering.Agglomerative{Linkage: clustering.AverageLinkage, Distance: clustering.Hamming{}}
	out, err := tdac.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Partition.Equal(planted) {
		t.Errorf("agglomerative partition = %s, want planted %s", out.Partition, planted)
	}
	rep := metrics.Evaluate(d, out.Truth)
	if rep.Accuracy < 0.95 {
		t.Errorf("accuracy with agglomerative clusterer = %v", rep.Accuracy)
	}
}

func TestCheckStabilityStrongSignal(t *testing.T) {
	d, planted := smallDS1(t)
	tdac := New(algorithms.NewAccu())
	st, err := tdac.CheckStability(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Partitions) != 5 || len(st.Silhouettes) != 5 {
		t.Fatalf("runs recorded: %d/%d", len(st.Partitions), len(st.Silhouettes))
	}
	// DS2's structure is clean: reseeding must agree almost always.
	if st.MeanRandIndex < 0.95 {
		t.Errorf("MeanRandIndex = %v, want ≈ 1 on clean structure", st.MeanRandIndex)
	}
	if !st.Modal.Equal(planted) {
		t.Errorf("modal partition %s != planted %s", st.Modal, planted)
	}
	if st.ModalShare < 0.8 {
		t.Errorf("ModalShare = %v", st.ModalShare)
	}
}

func TestCheckStabilityValidation(t *testing.T) {
	d, _ := smallDS1(t)
	if _, err := (&TDAC{}).CheckStability(d, 3); err == nil {
		t.Error("accepted missing base")
	}
	if _, err := New(algorithms.NewMajorityVote()).CheckStability(d, 1); err == nil {
		t.Error("accepted runs < 2")
	}
}

func TestRunOnPartition(t *testing.T) {
	d, planted := smallDS1(t)
	res, err := RunOnPartition(algorithms.NewAccu(), d, planted)
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(d, res.Truth)
	// Running on the planted partition is the domain-aware upper bound:
	// it must at least match plain Accu.
	base, _ := algorithms.NewAccu().Discover(d)
	if rep.Accuracy < metrics.Evaluate(d, base.Truth).Accuracy {
		t.Errorf("planted-partition accuracy %v below plain Accu", rep.Accuracy)
	}
	if _, err := RunOnPartition(nil, d, planted); err == nil {
		t.Error("accepted nil base")
	}
	if _, err := RunOnPartition(algorithms.NewAccu(), d, planted[:1]); err == nil {
		t.Error("accepted partial partition")
	}
}

func TestTDACProjection(t *testing.T) {
	d, planted := smallDS1(t)
	tdac := New(algorithms.NewAccu())
	tdac.ProjectDim = 64
	out, err := tdac.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Partition.Equal(planted) {
		t.Errorf("projected partition %s != planted %s", out.Partition, planted)
	}
	bad := New(algorithms.NewAccu())
	bad.ProjectDim = 64
	bad.Masked = true
	if _, err := bad.Run(d); err == nil {
		t.Error("accepted ProjectDim with Masked")
	}
}

// failingAlgorithm lets the tests inject base-algorithm failures. The call
// counter is atomic because TD-AC's parallel mode invokes Discover from
// several goroutines.
type failingAlgorithm struct{ calls atomic.Int64 }

func (f *failingAlgorithm) Name() string { return "failing" }
func (f *failingAlgorithm) Discover(d *truthdata.Dataset) (*algorithms.Result, error) {
	f.calls.Add(1)
	return nil, errors.New("injected failure")
}

func TestTDACPropagatesReferenceFailure(t *testing.T) {
	d, _ := smallDS1(t)
	tdac := New(&failingAlgorithm{})
	_, err := tdac.Run(d)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("err = %v, want injected failure", err)
	}
}

func TestTDACPropagatesGroupFailure(t *testing.T) {
	// Reference succeeds (MajorityVote) but the base fails per group.
	d, _ := smallDS1(t)
	fail := &failingAlgorithm{}
	tdac := New(fail)
	tdac.Reference = algorithms.NewMajorityVote()
	_, err := tdac.Run(d)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("err = %v, want injected failure", err)
	}
}

func TestTDACParallelPropagatesGroupFailure(t *testing.T) {
	d, _ := smallDS1(t)
	fail := &failingAlgorithm{}
	tdac := New(fail)
	tdac.Reference = algorithms.NewMajorityVote()
	tdac.Parallel = true
	if _, err := tdac.Run(d); err == nil {
		t.Error("parallel mode swallowed a group failure")
	}
}

// TestTDACRobustnessProperty: for random structurally correlated configs,
// TD-AC must run cleanly, cover every claimed cell and never do much
// worse than its base algorithm.
func TestTDACRobustnessProperty(t *testing.T) {
	f := func(seedRaw uint32, groupsRaw, m2Raw uint8) bool {
		groups := int(groupsRaw)%3 + 2 // 2..4 planted groups
		attrs := groups * 2
		cfg := synth.Config{
			Name:    "prop",
			Attrs:   attrs,
			Objects: 40,
			Sources: 8,
			M1:      1,
			M2:      float64(m2Raw%3) * 0.1,
			M3:      0.9,
			Seed:    int64(seedRaw),
		}
		g, err := synth.Generate(cfg)
		if err != nil {
			return false
		}
		base := algorithms.NewMajorityVote()
		out, err := New(base).Run(g.Dataset)
		if err != nil {
			return false
		}
		if len(out.Truth) != len(g.Dataset.Cells()) {
			return false
		}
		baseRes, err := base.Discover(g.Dataset)
		if err != nil {
			return false
		}
		baseAcc := metrics.Evaluate(g.Dataset, baseRes.Truth).Accuracy
		tdacAcc := metrics.Evaluate(g.Dataset, out.Truth).Accuracy
		// Allow a small tolerance: clustering noise on tiny datasets.
		return tdacAcc >= baseAcc-0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
