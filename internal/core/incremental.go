package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/obs"
	"tdac/internal/partition"
	"tdac/internal/truthdata"
)

// IncrementalState carries TD-AC's discovery prologue across dataset
// versions: the per-cell vote tallies behind the MajorityVote reference,
// the reference truth itself, the attribute truth vectors, and the
// packed distance-matrix geometry. A cold RunContext rebuilds all of
// that from scratch on every call; RunWithState instead Syncs the state
// to the requested version — a structural prefix-extension (the
// registry's append path) touches only the cells of the appended claims,
// repacks only the dirty attribute rows, and recomputes only the touched
// rows and columns of the flat upper-triangular distance matrix.
//
// Bit-identity is the contract: after Sync(d), the state's reference
// truth, truth vectors, packed planes and distance matrix are exactly
// what a cold run over d would build, so the sweep and per-group base
// runs downstream produce bit-identical results (pinned by the
// incremental-vs-cold invariant and FuzzIncrementalAppend).
//
// A state serialises Sync internally but must not Sync while another
// goroutine is mid-run on its geometry; give each concurrent run its
// own state (the server's cache single-flights per dataset).
type IncrementalState struct {
	mu sync.Mutex
	// data is the dataset version the state is synced to.
	data *truthdata.Dataset
	// votes[cell][source] is the value source claims for cell, with
	// exact duplicate claims collapsed — the same deduplication the
	// Index applies, so majority winners agree with MajorityVote.
	votes map[truthdata.Cell]map[truthdata.SourceID]string
	// refTruth[cell] is the majority winner — the maintained equivalent
	// of the cold path's reference MajorityVote run.
	refTruth map[truthdata.Cell]string
	// tv, packed and dm mirror what buildGeometry derives on the cold
	// unmasked/unprojected path from refTruth.
	tv     *TruthVectors
	packed *clustering.PackedVectors
	dm     *clustering.DistMatrix

	counters IncrCounters
}

// IncrCounters reports how an IncrementalState reached its current
// geometry; tests and benchmarks use it to assert which path ran.
type IncrCounters struct {
	// Primes counts cold builds: the first Sync, and any Sync whose
	// target was not a structural extension of the synced version.
	Primes int `json:"primes"`
	// Restores counts states rebuilt from a persisted StateSnapshot.
	Restores int `json:"restores"`
	// Appends counts Syncs that took the incremental path.
	Appends int `json:"appends"`
	// AppendedClaims totals the claims consumed by those appends.
	AppendedClaims int `json:"appended_claims"`
	// Rebuilds counts geometry rebuilds forced mid-append (shape growth
	// — new sources, objects or attributes — invalidates the column
	// layout). Vote state is still maintained incrementally.
	Rebuilds int `json:"rebuilds"`
}

// NewIncrementalState returns an empty state; the first Sync primes it.
func NewIncrementalState() *IncrementalState { return &IncrementalState{} }

// Counters returns a copy of the state's path counters.
func (st *IncrementalState) Counters() IncrCounters {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.counters
}

// Version returns the dataset the state is synced to (nil before the
// first Sync).
func (st *IncrementalState) Version() *truthdata.Dataset {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.data
}

// Sync brings the state to dataset version d. The first call primes it
// cold; a call with a structural prefix-extension of the synced version
// applies only the appended claims; pointer-identical versions are a
// no-op; anything else (a rollback, an unrelated dataset) falls back to
// a cold prime, which is always correct, just not incremental.
func (st *IncrementalState) Sync(d *truthdata.Dataset) error {
	if d == nil || len(d.Claims) == 0 {
		return algorithms.ErrEmptyDataset
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.data == d {
		return nil
	}
	if st.data == nil {
		return st.primeLocked(d)
	}
	delta, err := truthdata.Diff(st.data, d)
	if err != nil {
		return st.primeLocked(d)
	}
	return st.appendLocked(d, delta)
}

// primeLocked rebuilds everything cold from d.
func (st *IncrementalState) primeLocked(d *truthdata.Dataset) error {
	votes := make(map[truthdata.Cell]map[truthdata.SourceID]string, len(d.Claims)/2+1)
	for _, c := range d.Claims {
		cell := c.Cell()
		m := votes[cell]
		if m == nil {
			m = make(map[truthdata.SourceID]string, 4)
			votes[cell] = m
		}
		if prev, ok := m[c.Source]; ok && prev != c.Value {
			return fmt.Errorf("core: source %d claims both %q and %q for cell %v", c.Source, prev, c.Value, cell)
		}
		m[c.Source] = c.Value
	}
	refTruth := make(map[truthdata.Cell]string, len(votes))
	for cell, m := range votes {
		refTruth[cell] = majorityWinner(m)
	}
	st.votes, st.refTruth = votes, refTruth
	st.data = d
	st.counters.Primes++
	st.rebuildGeometryLocked(d)
	return nil
}

// appendLocked applies a verified prefix-extension delta: tallies the
// appended claims, repairs the majority winners of the touched cells,
// then patches only the dirty coordinates, packed rows and matrix
// entries. Shape growth (new identifiers) invalidates the (object,
// source) column layout, so geometry rebuilds cold from the maintained
// reference truth — still skipping the index and reference runs.
func (st *IncrementalState) appendLocked(d *truthdata.Dataset, delta *truthdata.Delta) error {
	changed := make(map[truthdata.Cell]bool, len(delta.Claims))
	for _, c := range delta.Claims {
		cell := c.Cell()
		m := st.votes[cell]
		if m == nil {
			m = make(map[truthdata.SourceID]string, 4)
			st.votes[cell] = m
		}
		if prev, ok := m[c.Source]; ok {
			if prev != c.Value {
				return fmt.Errorf("core: source %d claims both %q and %q for cell %v", c.Source, prev, c.Value, cell)
			}
			// Exact duplicate of an existing claim: it collapses to the
			// same single vote the Index would count, so nothing moves.
			continue
		}
		m[c.Source] = c.Value
		changed[cell] = true
	}
	for cell := range changed {
		st.refTruth[cell] = majorityWinner(st.votes[cell])
	}
	st.counters.Appends++
	st.counters.AppendedClaims += len(delta.Claims)
	st.data = d

	if delta.ShapeChanged() || st.packed == nil {
		st.counters.Rebuilds++
		st.rebuildGeometryLocked(d)
		return nil
	}

	// A cell's coordinates live entirely inside its attribute's truth
	// vector, so rewriting every (source) coordinate of each touched
	// cell — new votes and majority flips alike — repairs exactly the
	// dirty rows.
	nS := d.NumSources()
	dirty := make([]bool, d.NumAttrs())
	for cell := range changed {
		a := int(cell.Attr)
		row := st.tv.Vectors[a]
		truth := st.refTruth[cell]
		base := int(cell.Object) * nS
		for s, v := range st.votes[cell] {
			x := 0.0
			if v == truth {
				x = 1.0
			}
			row[base+int(s)] = x
		}
		dirty[a] = true
	}
	for a, isDirty := range dirty {
		if isDirty && !st.packed.SetRow(a, st.tv.Vectors[a]) {
			st.counters.Rebuilds++
			st.rebuildGeometryLocked(d)
			return nil
		}
	}
	if !st.dm.UpdateRowsPacked(st.packed, dirty) {
		st.counters.Rebuilds++
		st.rebuildGeometryLocked(d)
	}
	return nil
}

// rebuildGeometryLocked derives tv/packed/dm from the maintained
// reference truth, exactly as buildGeometry would on the cold
// unmasked/unprojected path.
func (st *IncrementalState) rebuildGeometryLocked(d *truthdata.Dataset) {
	st.tv = BuildTruthVectors(d, st.refTruth, false)
	st.packed, _ = clustering.PackBinary(st.tv.Vectors)
	if st.packed != nil {
		st.dm = clustering.NewDistMatrixPacked(st.packed)
	} else {
		st.dm = clustering.NewDistMatrix(st.tv.Vectors, clustering.Hamming{})
	}
}

// majorityWinner resolves a cell's majority value: most deduplicated
// votes, ties to the lexicographically smallest value — the same total
// order MajorityVote.DiscoverIndexed resolves over the sorted candidate
// list, made map-iteration-order-proof by comparing (count, value).
func majorityWinner(m map[truthdata.SourceID]string) string {
	counts := make(map[string]int, len(m))
	for _, v := range m {
		counts[v]++
	}
	best, bestN := "", -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// geometry returns the maintained clustering geometry for the sweep.
func (st *IncrementalState) geometry() *geometry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return &geometry{tv: st.tv, dist: clustering.Hamming{}, packed: st.packed, distMatrix: st.dm}
}

// referenceResult materialises the maintained reference as an
// algorithms.Result. Only Truth is populated: the cold reference's
// Confidence and Trust never feed the pipeline or the public Result, so
// the incremental path does not maintain them.
func (st *IncrementalState) referenceResult() *algorithms.Result {
	st.mu.Lock()
	defer st.mu.Unlock()
	truth := make(map[truthdata.Cell]string, len(st.refTruth))
	for cell, v := range st.refTruth {
		truth[cell] = v
	}
	return &algorithms.Result{
		Algorithm:  (&algorithms.MajorityVote{}).Name(),
		Truth:      truth,
		Iterations: 1,
		Converged:  true,
	}
}

// incrementalCompatible rejects TDAC configurations whose geometry the
// state cannot maintain: the incremental path is pinned to the default
// unmasked, unprojected Hamming pipeline with a MajorityVote reference
// (the only built-in reference whose truth updates bit-identically
// under appends).
func incrementalCompatible(t *TDAC) error {
	if t.Masked {
		return fmt.Errorf("core: incremental discovery is incompatible with Masked")
	}
	if t.ProjectDim > 0 {
		return fmt.Errorf("core: incremental discovery is incompatible with ProjectDim")
	}
	if t.Distance != nil {
		return fmt.Errorf("core: incremental discovery requires the default Hamming distance")
	}
	ref := t.Reference
	if ref == nil {
		ref = t.Base
	}
	if _, ok := ref.(*algorithms.MajorityVote); !ok {
		name := "nil"
		if ref != nil {
			name = ref.Name()
		}
		return fmt.Errorf("core: incremental discovery requires a MajorityVote reference, got %s", name)
	}
	return nil
}

// RunWithState executes Algorithm 1 like RunContext, but sources the
// discovery prologue (reference truth, truth vectors, packed geometry)
// from st, syncing it to d first. Identical geometry feeds the shared
// sweep, so the Outcome is bit-identical to a cold RunContext over d —
// except ReferenceResult, which carries the reference Truth only (see
// referenceResult). The configuration must satisfy
// incrementalCompatible; st must not be shared by concurrent runs.
func (t *TDAC) RunWithState(ctx context.Context, d *truthdata.Dataset, st *IncrementalState) (*Outcome, error) {
	start := time.Now()
	if t.Base == nil {
		return nil, errNoBase
	}
	if st == nil {
		return nil, fmt.Errorf("core: RunWithState requires a non-nil IncrementalState")
	}
	if len(d.Claims) == 0 {
		return nil, algorithms.ErrEmptyDataset
	}
	if err := incrementalCompatible(t); err != nil {
		return nil, err
	}
	if _, err := t.resolveSearch(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rec := t.Recorder
	rec.Start()

	syncDone := rec.Phase(obs.PhaseIncrementalSync)
	if err := st.Sync(d); err != nil {
		return nil, fmt.Errorf("core: incremental sync: %w", err)
	}
	g := st.geometry()
	syncDone()
	rec.MatrixDone(obs.MatrixStats{
		Points: g.distMatrix.N,
		Pairs:  len(g.distMatrix.Tri),
		Packed: g.packed != nil,
	})

	nAttrs := d.NumAttrs()
	minK, maxK, err := t.kRange(nAttrs)
	if err != nil {
		return nil, err
	}
	var (
		part     partition.Partition
		sil      float64
		explored []KScore
	)
	if minK > maxK {
		part = partition.Whole(nAttrs)
	} else {
		// The shared strategy dispatch: the maintained geometry feeds the
		// exhaustive sweep or the sublinear search exactly as a cold run's
		// freshly built geometry would, keeping warm-vs-cold bit-identity
		// under every Search strategy.
		part, sil, explored, err = t.selectOverGeometry(ctx, g, minK, maxK)
		if err != nil {
			return nil, err
		}
	}

	res, err := t.discoverOnPartition(ctx, d, part)
	if err != nil {
		return nil, err
	}
	res.Algorithm = t.Name()
	res.Iterations = 1
	res.Runtime = time.Since(start)

	return &Outcome{
		Result:          res,
		Partition:       part,
		Silhouette:      sil,
		Explored:        explored,
		ReferenceResult: st.referenceResult(),
		Stats:           rec.Finish(),
	}, nil
}

// StateCell is one (cell, value) pair of a persisted reference truth.
type StateCell struct {
	Object truthdata.ObjectID `json:"o"`
	Attr   truthdata.AttrID   `json:"a"`
	Value  string             `json:"v"`
}

// StateVote is one persisted deduplicated claim tally entry.
type StateVote struct {
	Object truthdata.ObjectID `json:"o"`
	Attr   truthdata.AttrID   `json:"a"`
	Source truthdata.SourceID `json:"s"`
	Value  string             `json:"v"`
}

// StateSnapshot is the serialisable form of an IncrementalState's vote
// and reference-truth maps plus the shape of the dataset version they
// describe. Geometry is excluded on purpose: RestoreState re-derives it
// from the truth, so a snapshot can never smuggle in a matrix that
// disagrees with its own votes. Entries are sorted, making equal states
// byte-identical when marshalled.
type StateSnapshot struct {
	Claims  int         `json:"claims"`
	Sources int         `json:"sources"`
	Objects int         `json:"objects"`
	Attrs   int         `json:"attrs"`
	Truth   []StateCell `json:"truth"`
	Votes   []StateVote `json:"votes"`
}

// Snapshot serialises the state's maintained maps (nil before the first
// Sync).
func (st *IncrementalState) Snapshot() *StateSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.data == nil {
		return nil
	}
	snap := &StateSnapshot{
		Claims:  len(st.data.Claims),
		Sources: st.data.NumSources(),
		Objects: st.data.NumObjects(),
		Attrs:   st.data.NumAttrs(),
		Truth:   make([]StateCell, 0, len(st.refTruth)),
		Votes:   make([]StateVote, 0, len(st.refTruth)),
	}
	for cell, v := range st.refTruth {
		snap.Truth = append(snap.Truth, StateCell{Object: cell.Object, Attr: cell.Attr, Value: v})
	}
	for cell, m := range st.votes {
		for s, v := range m {
			snap.Votes = append(snap.Votes, StateVote{Object: cell.Object, Attr: cell.Attr, Source: s, Value: v})
		}
	}
	sort.Slice(snap.Truth, func(i, j int) bool {
		a, b := snap.Truth[i], snap.Truth[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Attr < b.Attr
	})
	sort.Slice(snap.Votes, func(i, j int) bool {
		a, b := snap.Votes[i], snap.Votes[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		return a.Source < b.Source
	})
	return snap
}

// RestoreState rebuilds an IncrementalState from a persisted snapshot,
// verifying that the snapshot describes exactly dataset version d: the
// claim count and every identifier-space size must match, every entry
// must reference in-range ids, and the persisted truth must equal the
// majority winners of the persisted votes. Any mismatch returns an
// error and the caller should prime a fresh state cold — a stale or
// torn snapshot costs a rebuild, never a wrong result.
func RestoreState(d *truthdata.Dataset, snap *StateSnapshot) (*IncrementalState, error) {
	if d == nil || snap == nil {
		return nil, fmt.Errorf("core: RestoreState requires a dataset and a snapshot")
	}
	if snap.Claims != len(d.Claims) || snap.Sources != d.NumSources() ||
		snap.Objects != d.NumObjects() || snap.Attrs != d.NumAttrs() {
		return nil, fmt.Errorf("core: snapshot shape (%d claims, %d/%d/%d ids) does not match dataset (%d claims, %d/%d/%d ids)",
			snap.Claims, snap.Sources, snap.Objects, snap.Attrs,
			len(d.Claims), d.NumSources(), d.NumObjects(), d.NumAttrs())
	}
	votes := make(map[truthdata.Cell]map[truthdata.SourceID]string, len(snap.Truth))
	for _, e := range snap.Votes {
		if int(e.Source) < 0 || int(e.Source) >= snap.Sources ||
			int(e.Object) < 0 || int(e.Object) >= snap.Objects ||
			int(e.Attr) < 0 || int(e.Attr) >= snap.Attrs || e.Value == "" {
			return nil, fmt.Errorf("core: snapshot vote references ids outside the dataset")
		}
		cell := truthdata.Cell{Object: e.Object, Attr: e.Attr}
		m := votes[cell]
		if m == nil {
			m = make(map[truthdata.SourceID]string, 4)
			votes[cell] = m
		}
		if prev, ok := m[e.Source]; ok && prev != e.Value {
			return nil, fmt.Errorf("core: snapshot holds conflicting votes for cell %v", cell)
		}
		m[e.Source] = e.Value
	}
	if len(snap.Truth) != len(votes) {
		return nil, fmt.Errorf("core: snapshot truth covers %d cells, votes cover %d", len(snap.Truth), len(votes))
	}
	refTruth := make(map[truthdata.Cell]string, len(snap.Truth))
	for _, e := range snap.Truth {
		cell := truthdata.Cell{Object: e.Object, Attr: e.Attr}
		m, ok := votes[cell]
		if !ok {
			return nil, fmt.Errorf("core: snapshot truth names cell %v with no votes", cell)
		}
		if w := majorityWinner(m); w != e.Value {
			return nil, fmt.Errorf("core: snapshot truth %q for cell %v disagrees with its votes (majority %q)", e.Value, cell, w)
		}
		refTruth[cell] = e.Value
	}
	st := &IncrementalState{votes: votes, refTruth: refTruth, data: d}
	st.counters.Restores++
	st.rebuildGeometryLocked(d)
	return st, nil
}
