package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"tdac/internal/clustering"
	"tdac/internal/obs"
	"tdac/internal/partition"
)

// This file implements the sublinear k-selection strategies behind the
// Search field (DESIGN.md §16). Both replace the exhaustive sweep's
// |MaxK-MinK+1| clusterings with a handful of probes:
//
//   - one agglomerative dendrogram is built from the already-shared
//     distance matrix (NN-chain UPGMA, O(|A|²)), and every probed
//     k-means is warm-started from the corresponding dendrogram cut
//     instead of running k-means++ restarts from scratch;
//   - "golden" narrows a golden-section bracket over the silhouette-vs-k
//     curve and stops early once an envelope bound proves the remaining
//     bracket cannot beat the incumbent by more than searchEpsilon;
//   - "mdl" scans k ascending and stops once an MDL-style description
//     length has not improved for searchPatience consecutive ks.
//
// Either way the selected partition is the best silhouette among the
// probed ks, so the verify harness can hold both strategies to the same
// oracle: within epsilon of the exhaustive sweep's best silhouette.
//
// Determinism: the dendrogram build, the cuts, the warm-started Lloyd
// runs (single restart, no randomness consumed) and the bracket
// arithmetic use nothing but the geometry, so a search is bit-identical
// across reruns and across the cold and incremental paths.

const (
	// searchEpsilon is the envelope slack of the golden strategy: the
	// bracket is abandoned when its estimated best achievable silhouette
	// cannot beat the incumbent by more than this.
	searchEpsilon = 1e-3
	// searchPatience is how many consecutive non-improving ks the MDL
	// scan tolerates before stopping.
	searchPatience = 4
)

// kProbe is one memoized probe of the search: the warm-started
// clustering of one k and its silhouette.
type kProbe struct {
	clustering *clustering.Clustering
	sil        float64
	dur        time.Duration
}

// searchPartition selects a partition over [minK, maxK] with a
// sublinear strategy (SearchGolden or SearchMDL) instead of the
// exhaustive sweep. The Explored table carries only the probed ks,
// ascending — consumers must read each entry's K, the range has holes.
func (t *TDAC) searchPartition(ctx context.Context, g *geometry, minK, maxK int, strategy string) (partition.Partition, float64, []KScore, error) {
	rec := t.Recorder
	sweepDone := rec.Phase(obs.PhaseKSweep)

	// One dendrogram for every probe. Average linkage mirrors the mean
	// pairwise geometry the silhouette scores.
	dend := clustering.BuildDendrogram(g.distMatrix, clustering.AverageLinkage)

	probes := make(map[int]*kProbe)
	probe := func(k int) (*kProbe, error) {
		if p, ok := probes[k]; ok {
			return p, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var t0 time.Time
		if rec.Enabled() {
			t0 = time.Now()
		}
		seedAssign, err := dend.CutAssign(k)
		if err != nil {
			return nil, fmt.Errorf("core: dendrogram cut at k=%d: %w", k, err)
		}
		km := t.KMeans
		km.Distance = g.dist
		km.InitAssign = seedAssign
		c, err := km.Cluster(g.tv.Vectors, k)
		if err != nil {
			return nil, fmt.Errorf("core: clustering with k=%d: %w", k, err)
		}
		p := &kProbe{clustering: c, sil: clustering.SilhouetteFromDistMatrix(g.distMatrix, c.Assign, k)}
		rec.KDone(k, p.sil)
		if rec.Enabled() {
			p.dur = time.Since(t0)
		}
		probes[k] = p
		return p, nil
	}

	var err error
	switch strategy {
	case SearchGolden:
		err = goldenSearch(probe, minK, maxK)
	case SearchMDL:
		err = mdlSearch(probe, minK, maxK, len(g.tv.Vectors), g.tv.Dim)
	default:
		err = fmt.Errorf("core: searchPartition does not implement strategy %q", strategy)
	}
	if err != nil {
		return nil, 0, nil, err
	}

	// Resolve the best silhouette in ascending k — the same tie-break
	// (smallest k wins) as the exhaustive sweep — and assemble the
	// Explored table from the probes.
	ks := make([]int, 0, len(probes))
	for k := range probes {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var (
		best     partition.Partition
		bestSil  float64
		haveBest bool
		explored []KScore
	)
	for _, k := range ks {
		p := probes[k]
		explored = append(explored, KScore{K: k, Silhouette: p.sil, Inertia: p.clustering.Inertia})
		if !haveBest || p.sil > bestSil {
			haveBest = true
			bestSil = p.sil
			best = partition.FromAssign(p.clustering.Assign, k)
		}
	}
	sweepDone()
	if rec.Enabled() {
		seed := t.KMeans.Seed
		if seed == 0 {
			seed = 1
		}
		maxIter := t.KMeans.MaxIterations
		if maxIter == 0 {
			maxIter = 100
		}
		ss := obs.SweepStats{
			Seed:     seed,
			Workers:  1, // the search is adaptive, probes run sequentially
			MinK:     minK,
			MaxK:     maxK,
			Strategy: strategy,
			Ks:       make([]obs.KStats, 0, len(ks)),
		}
		for _, k := range ks {
			p := probes[k]
			ss.Duration += p.dur
			ss.Ks = append(ss.Ks, obs.KStats{
				K:          k,
				Duration:   p.dur,
				Iterations: p.clustering.Iterations,
				Converged:  p.clustering.Iterations < maxIter,
				Silhouette: p.sil,
				Inertia:    p.clustering.Inertia,
			})
		}
		// Every probed silhouette read the shared matrix; the warm start
		// replaces k-means++ seeding entirely, so no seeded runs.
		rec.SweepDone(ss, obs.CacheStats{SilhouetteEvals: len(ks)})
	}
	return best, bestSil, explored, nil
}

// goldenSearch narrows a golden-section bracket over the silhouette-vs-k
// curve. Silhouette-vs-k is treated as approximately unimodal — true on
// clusterable geometries, where cohesion rises toward the natural group
// count and falls as groups shatter — and the search carries an envelope
// early stop guarding the cost side: the largest silhouette slope
// observed between probed neighbours acts as an empirical Lipschitz
// estimate L, and once max(f(lo), f(hi)) + L·(hi-lo)/2 cannot beat the
// incumbent by searchEpsilon, no point of the remaining bracket can
// plausibly win and the search stops.
func goldenSearch(probe func(int) (*kProbe, error), minK, maxK int) error {
	lo, hi := minK, maxK
	plo, err := probe(lo)
	if err != nil {
		return err
	}
	phi, err := probe(hi)
	if err != nil {
		return err
	}
	if hi-lo < 2 {
		return nil
	}

	// incumbent and slope estimate over everything probed so far.
	type probed struct {
		k   int
		sil float64
	}
	seen := []probed{{lo, plo.sil}, {hi, phi.sil}}
	incumbent := math.Max(plo.sil, phi.sil)
	note := func(k int, p *kProbe) {
		seen = append(seen, probed{k, p.sil})
		if p.sil > incumbent {
			incumbent = p.sil
		}
	}
	slope := func() float64 {
		sort.Slice(seen, func(i, j int) bool { return seen[i].k < seen[j].k })
		L := 0.0
		for i := 1; i < len(seen); i++ {
			dk := float64(seen[i].k - seen[i-1].k)
			if dk == 0 {
				continue
			}
			if s := math.Abs(seen[i].sil-seen[i-1].sil) / dk; s > L {
				L = s
			}
		}
		return L
	}

	const invphi = 0.6180339887498949 // (√5−1)/2
	for hi-lo > 3 {
		span := float64(hi - lo)
		m1 := hi - int(math.Round(invphi*span))
		m2 := lo + int(math.Round(invphi*span))
		if m1 <= lo {
			m1 = lo + 1
		}
		if m2 >= hi {
			m2 = hi - 1
		}
		if m2 <= m1 {
			m2 = m1 + 1
		}
		p1, err := probe(m1)
		if err != nil {
			return err
		}
		p2, err := probe(m2)
		if err != nil {
			return err
		}
		note(m1, p1)
		note(m2, p2)
		// Keep the half whose interior probe scores higher; ties keep the
		// lower half so the final tie-break toward small k stays reachable.
		if p1.sil >= p2.sil {
			hi = m2
		} else {
			lo = m1
		}
		flo, err := probe(lo)
		if err != nil {
			return err
		}
		fhi, err := probe(hi)
		if err != nil {
			return err
		}
		note(lo, flo)
		note(hi, fhi)
		// Envelope stop: with slope estimate L, no k inside (lo,hi) can
		// exceed its nearer bracket endpoint by more than L·(hi-lo)/2.
		bound := math.Max(flo.sil, fhi.sil) + slope()*float64(hi-lo)/2
		if bound <= incumbent+searchEpsilon {
			return nil
		}
	}
	// Exhaust the final (≤ 4-wide) bracket.
	for k := lo + 1; k < hi; k++ {
		if _, err := probe(k); err != nil {
			return err
		}
	}
	return nil
}

// mdlSearch scans k ascending under an MDL-style stopping rule: the
// description length of the clustering — a data term for the
// within-cluster spread plus a model term growing with k —
//
//	DL(k) = (n·d/2)·ln(max(inertia/(n·d), εvar)) + (k·d/2)·ln(n)
//
// is tracked, and the scan stops once DL has not improved for
// searchPatience consecutive ks (or the range is exhausted). This
// mirrors the MDL-scored efficient-partition-discovery recipe: model
// cost buys spread reduction only while the data supports more groups.
// Selection afterwards is still by silhouette among the probed prefix,
// holding this strategy to the same oracle as the others.
func mdlSearch(probe func(int) (*kProbe, error), minK, maxK, n, dim int) error {
	if n < 1 || dim < 1 {
		return fmt.Errorf("core: mdl search over degenerate geometry (%d points, dim %d)", n, dim)
	}
	nd := float64(n * dim)
	dl := func(k int, p *kProbe) float64 {
		variance := p.clustering.Inertia / nd
		if variance < 1e-12 {
			variance = 1e-12 // an exact fit would send the data term to -∞
		}
		return 0.5*nd*math.Log(variance) + 0.5*float64(k*dim)*math.Log(float64(n))
	}
	bestDL := math.Inf(1)
	stale := 0
	for k := minK; k <= maxK; k++ {
		p, err := probe(k)
		if err != nil {
			return err
		}
		if s := dl(k, p); s < bestDL {
			bestDL = s
			stale = 0
		} else {
			stale++
			if stale >= searchPatience {
				return nil
			}
		}
	}
	return nil
}
