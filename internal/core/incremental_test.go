package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

// extendDataset builds a structural prefix-extension of prev, the way
// the server registry's append path does: shared name-table and claim
// prefixes, new entries and claims appended.
func extendDataset(prev *truthdata.Dataset, newSources, newObjects, newAttrs []string, claims []truthdata.Claim) *truthdata.Dataset {
	next := &truthdata.Dataset{
		Name:    prev.Name,
		Sources: append(append([]string(nil), prev.Sources...), newSources...),
		Objects: append(append([]string(nil), prev.Objects...), newObjects...),
		Attrs:   append(append([]string(nil), prev.Attrs...), newAttrs...),
		Claims:  append(append([]truthdata.Claim(nil), prev.Claims...), claims...),
		Truth:   prev.Truth,
	}
	return next
}

func incrementalTDAC() *TDAC {
	return &TDAC{
		Base:      algorithms.NewMajorityVote(),
		Reference: algorithms.NewMajorityVote(),
		Workers:   1,
	}
}

// assertOutcomesIdentical compares everything the public Result is
// built from, bit-for-bit.
func assertOutcomesIdentical(t *testing.T, label string, cold, incr *Outcome) {
	t.Helper()
	if !cold.Partition.Equal(incr.Partition) {
		t.Fatalf("%s: partition cold %s != incremental %s", label, cold.Partition, incr.Partition)
	}
	if cold.Silhouette != incr.Silhouette {
		t.Fatalf("%s: silhouette cold %v != incremental %v", label, cold.Silhouette, incr.Silhouette)
	}
	if len(cold.Explored) != len(incr.Explored) {
		t.Fatalf("%s: explored %d ks cold, %d incremental", label, len(cold.Explored), len(incr.Explored))
	}
	for i := range cold.Explored {
		if cold.Explored[i] != incr.Explored[i] {
			t.Fatalf("%s: explored[%d] cold %+v != incremental %+v", label, i, cold.Explored[i], incr.Explored[i])
		}
	}
	if len(cold.Truth) != len(incr.Truth) {
		t.Fatalf("%s: truth sizes %d != %d", label, len(cold.Truth), len(incr.Truth))
	}
	for cell, v := range cold.Truth {
		if got, ok := incr.Truth[cell]; !ok || got != v {
			t.Fatalf("%s: truth[%v] cold %q != incremental %q (present %v)", label, cell, v, got, ok)
		}
	}
	if len(cold.Confidence) != len(incr.Confidence) {
		t.Fatalf("%s: confidence sizes %d != %d", label, len(cold.Confidence), len(incr.Confidence))
	}
	for cell, v := range cold.Confidence {
		if got := incr.Confidence[cell]; got != v {
			t.Fatalf("%s: confidence[%v] cold %v != incremental %v", label, cell, v, got)
		}
	}
	if len(cold.Trust) != len(incr.Trust) {
		t.Fatalf("%s: trust lengths %d != %d", label, len(cold.Trust), len(incr.Trust))
	}
	for s := range cold.Trust {
		if cold.Trust[s] != incr.Trust[s] {
			t.Fatalf("%s: trust[%d] cold %v != incremental %v", label, s, cold.Trust[s], incr.Trust[s])
		}
	}
	// The incremental reference carries the same truth the cold
	// reference run predicted (Trust/Confidence intentionally omitted).
	if len(cold.ReferenceResult.Truth) != len(incr.ReferenceResult.Truth) {
		t.Fatalf("%s: reference truth sizes %d != %d", label, len(cold.ReferenceResult.Truth), len(incr.ReferenceResult.Truth))
	}
	for cell, v := range cold.ReferenceResult.Truth {
		if got := incr.ReferenceResult.Truth[cell]; got != v {
			t.Fatalf("%s: reference truth[%v] cold %q != incremental %q", label, cell, v, got)
		}
	}
}

func TestIncrementalMatchesColdAcrossAppends(t *testing.T) {
	g, err := synth.Generate(synth.DS1().Scaled(60))
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dataset
	ctx := context.Background()
	st := NewIncrementalState()

	// Seed an append pool: extra claims over existing ids with values
	// engineered to flip some majority winners.
	rng := rand.New(rand.NewSource(7))
	versions := []*truthdata.Dataset{d}
	cur := d
	for v := 0; v < 4; v++ {
		batch := make([]truthdata.Claim, 0, 3)
		for i := 0; i < 1+v%3; i++ {
			c := cur.Claims[rng.Intn(len(cur.Claims))]
			// Re-claim an existing cell from a likely-new source with a
			// contested value; exact duplicates are legal and exercised.
			c.Source = truthdata.SourceID(rng.Intn(len(cur.Sources)))
			if rng.Intn(3) == 0 {
				c.Value = "contested"
			}
			if hasConflict(cur, batch, c) {
				continue
			}
			batch = append(batch, c)
		}
		cur = extendDataset(cur, nil, nil, nil, batch)
		if err := cur.Validate(); err != nil {
			t.Fatalf("version %d invalid: %v", v+1, err)
		}
		versions = append(versions, cur)
	}

	for vi, ver := range versions {
		cold, err := incrementalTDAC().RunContext(ctx, ver)
		if err != nil {
			t.Fatalf("cold run on version %d: %v", vi, err)
		}
		incr, err := incrementalTDAC().RunWithState(ctx, ver, st)
		if err != nil {
			t.Fatalf("incremental run on version %d: %v", vi, err)
		}
		assertOutcomesIdentical(t, ver.Name, cold, incr)
	}
	c := st.Counters()
	if c.Primes != 1 {
		t.Errorf("Primes = %d, want 1 (only the first version pays the cold cost)", c.Primes)
	}
	if c.Appends != len(versions)-1 {
		t.Errorf("Appends = %d, want %d", c.Appends, len(versions)-1)
	}
	if c.Rebuilds != 0 {
		t.Errorf("Rebuilds = %d, want 0 (no shape growth in this test)", c.Rebuilds)
	}
}

// TestIncrementalSearchMatchesCold re-runs the incremental-vs-cold
// contract under both sublinear k-search strategies: the warm state
// hands the search the same geometry a fresh build would, so the
// dendrogram, the probed ks, and the final outcome must all be
// bit-identical to a cold run with the same strategy.
func TestIncrementalSearchMatchesCold(t *testing.T) {
	g, err := synth.Generate(synth.Config{
		Name:           "incr-search",
		Attrs:          24,
		Objects:        30,
		Sources:        8,
		GroupSizes:     []int{6, 6, 6, 6},
		M1:             1,
		M2:             0,
		M3:             0.9,
		FalseValues:    20,
		DistractorProb: 0.3,
		Coverage:       1,
		Seed:           19,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{SearchGolden, SearchMDL} {
		t.Run(strategy, func(t *testing.T) {
			ctx := context.Background()
			st := NewIncrementalState()
			rng := rand.New(rand.NewSource(11))
			cur := g.Dataset
			for v := 0; v < 3; v++ {
				searchTDAC := func() *TDAC {
					td := incrementalTDAC()
					td.Search = strategy
					return td
				}
				cold, err := searchTDAC().RunContext(ctx, cur)
				if err != nil {
					t.Fatalf("cold %s run on version %d: %v", strategy, v, err)
				}
				incr, err := searchTDAC().RunWithState(ctx, cur, st)
				if err != nil {
					t.Fatalf("incremental %s run on version %d: %v", strategy, v, err)
				}
				assertOutcomesIdentical(t, fmt.Sprintf("%s v%d", strategy, v), cold, incr)
				if len(cold.Explored) >= cur.NumAttrs()-2 {
					t.Fatalf("%s v%d probed %d ks — degenerated into the exhaustive sweep", strategy, v, len(cold.Explored))
				}

				batch := make([]truthdata.Claim, 0, 2)
				for i := 0; i < 2; i++ {
					c := cur.Claims[rng.Intn(len(cur.Claims))]
					c.Source = truthdata.SourceID(rng.Intn(len(cur.Sources)))
					if rng.Intn(2) == 0 {
						c.Value = "contested"
					}
					if hasConflict(cur, batch, c) {
						continue
					}
					batch = append(batch, c)
				}
				cur = extendDataset(cur, nil, nil, nil, batch)
				if err := cur.Validate(); err != nil {
					t.Fatalf("version %d invalid: %v", v+1, err)
				}
			}
			if c := st.Counters(); c.Primes != 1 {
				t.Errorf("Primes = %d, want 1 (search must not force re-priming)", c.Primes)
			}
		})
	}
}

// hasConflict reports whether adding c to cur+batch would give one
// source two different values for a cell (an invalid dataset).
func hasConflict(cur *truthdata.Dataset, batch []truthdata.Claim, c truthdata.Claim) bool {
	for _, e := range cur.Claims {
		if e.Source == c.Source && e.Cell() == c.Cell() && e.Value != c.Value {
			return true
		}
	}
	for _, e := range batch {
		if e.Source == c.Source && e.Cell() == c.Cell() && e.Value != c.Value {
			return true
		}
	}
	return false
}

func TestIncrementalShapeGrowthRebuildsAndMatches(t *testing.T) {
	g, err := synth.Generate(synth.DS2().Scaled(40))
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dataset
	ctx := context.Background()
	st := NewIncrementalState()
	if _, err := incrementalTDAC().RunWithState(ctx, d, st); err != nil {
		t.Fatal(err)
	}

	// Grow every identifier space at once.
	nS, nO, nA := d.NumSources(), d.NumObjects(), d.NumAttrs()
	next := extendDataset(d, []string{"new-source"}, []string{"new-object"}, []string{"new-attr"}, []truthdata.Claim{
		{Source: truthdata.SourceID(nS), Object: truthdata.ObjectID(nO), Attr: truthdata.AttrID(nA), Value: "x"},
		{Source: 0, Object: truthdata.ObjectID(nO), Attr: 0, Value: "y"},
	})
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	cold, err := incrementalTDAC().RunContext(ctx, next)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := incrementalTDAC().RunWithState(ctx, next, st)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesIdentical(t, "shape-growth", cold, incr)
	c := st.Counters()
	if c.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1 (shape growth forces a geometry rebuild)", c.Rebuilds)
	}
	if c.Appends != 1 {
		t.Errorf("Appends = %d, want 1 (vote state still advanced incrementally)", c.Appends)
	}
}

func TestIncrementalNonExtensionFallsBackToPrime(t *testing.T) {
	g1, err := synth.Generate(synth.DS1().Scaled(30))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := synth.Generate(synth.DS3().Scaled(30))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := NewIncrementalState()
	if _, err := incrementalTDAC().RunWithState(ctx, g1.Dataset, st); err != nil {
		t.Fatal(err)
	}
	// An unrelated dataset is not an extension: the state must re-prime
	// and still produce the cold result.
	cold, err := incrementalTDAC().RunContext(ctx, g2.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := incrementalTDAC().RunWithState(ctx, g2.Dataset, st)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesIdentical(t, "non-extension", cold, incr)
	if c := st.Counters(); c.Primes != 2 {
		t.Errorf("Primes = %d, want 2 (fallback re-primes)", c.Primes)
	}
}

func TestIncrementalConfigRejected(t *testing.T) {
	g, err := synth.Generate(synth.DS1().Scaled(20))
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dataset
	ctx := context.Background()
	cases := map[string]*TDAC{
		"masked":        {Base: algorithms.NewMajorityVote(), Reference: algorithms.NewMajorityVote(), Masked: true},
		"projection":    {Base: algorithms.NewMajorityVote(), Reference: algorithms.NewMajorityVote(), ProjectDim: 8},
		"distance":      {Base: algorithms.NewMajorityVote(), Reference: algorithms.NewMajorityVote(), Distance: clustering.Euclidean{}},
		"reference":     {Base: algorithms.NewMajorityVote(), Reference: algorithms.NewAccu()},
		"base-fallback": {Base: algorithms.NewAccu()}, // nil reference defaults to a non-MajorityVote base
	}
	for name, cfg := range cases {
		if _, err := cfg.RunWithState(ctx, d, NewIncrementalState()); err == nil {
			t.Errorf("%s: RunWithState accepted an incompatible configuration", name)
		}
	}
	if _, err := incrementalTDAC().RunWithState(ctx, d, nil); err == nil {
		t.Error("RunWithState accepted a nil state")
	}
}

func TestIncrementalSnapshotRestore(t *testing.T) {
	g, err := synth.Generate(synth.DS1().Scaled(40))
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dataset
	ctx := context.Background()
	st := NewIncrementalState()
	if _, err := incrementalTDAC().RunWithState(ctx, d, st); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap == nil {
		t.Fatal("Snapshot returned nil after a sync")
	}

	restored, err := RestoreState(d, snap)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if c := restored.Counters(); c.Restores != 1 {
		t.Errorf("Restores = %d, want 1", c.Restores)
	}

	// The restored state must continue incrementally and bit-identically.
	next := extendDataset(d, nil, nil, nil, []truthdata.Claim{
		{Source: 1, Object: 2, Attr: 0, Value: "contested"},
	})
	if err := next.Validate(); err != nil {
		next = extendDataset(d, nil, nil, nil, nil) // claim conflicted; append nothing
	}
	cold, err := incrementalTDAC().RunContext(ctx, next)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := incrementalTDAC().RunWithState(ctx, next, restored)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesIdentical(t, "restored", cold, incr)
	if c := restored.Counters(); c.Primes != 0 {
		t.Errorf("Primes = %d, want 0 (restore + append must avoid cold runs)", c.Primes)
	}

	// Tampered snapshots are rejected, never silently accepted.
	bad := *snap
	bad.Claims++
	if _, err := RestoreState(d, &bad); err == nil {
		t.Error("RestoreState accepted a snapshot with a wrong claim count")
	}
	bad = *snap
	bad.Truth = append([]StateCell(nil), snap.Truth...)
	if len(bad.Truth) > 0 {
		bad.Truth[0].Value += "-tampered"
		if _, err := RestoreState(d, &bad); err == nil {
			t.Error("RestoreState accepted a truth entry disagreeing with its votes")
		}
	}
	if _, err := RestoreState(d, nil); err == nil {
		t.Error("RestoreState accepted a nil snapshot")
	}
}

// FuzzIncrementalAppend drives one IncrementalState through a random
// interleaving of appends (new claims, duplicates, shape growth) and
// discoveries, comparing every discovery bit-for-bit against a cold
// rebuild oracle over the same version.
func FuzzIncrementalAppend(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3})
	f.Add(int64(42), []byte{9, 9, 9, 0, 0, 1})
	f.Add(int64(-7), []byte{255, 128, 7, 3, 64, 0, 11, 2})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 24 {
			script = script[:24]
		}
		rng := rand.New(rand.NewSource(seed))

		// A small structured base so the sweep has a real landscape.
		g, err := synth.Generate(synth.Config{
			Name:           "fuzz",
			Attrs:          5,
			Objects:        8,
			Sources:        4,
			GroupSizes:     []int{3, 2},
			M1:             1.0,
			M2:             0.2,
			M3:             1.0,
			FalseValues:    3,
			DistractorProb: 0.5,
			Coverage:       0.8,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		cur := g.Dataset
		if len(cur.Claims) == 0 {
			t.Skip("empty base")
		}
		ctx := context.Background()
		st := NewIncrementalState()
		values := []string{"v0", "v1", "v2"}

		discover := func(label byte) {
			cold, err := incrementalTDAC().RunContext(ctx, cur)
			if err != nil {
				t.Fatalf("cold run (step %d): %v", label, err)
			}
			incr, err := incrementalTDAC().RunWithState(ctx, cur, st)
			if err != nil {
				t.Fatalf("incremental run (step %d): %v", label, err)
			}
			assertOutcomesIdentical(t, "fuzz", cold, incr)
		}

		for _, op := range script {
			switch op % 4 {
			case 0: // discover and compare
				discover(op)
			case 1: // append claims over existing ids
				n := 1 + int(op/4)%3
				batch := make([]truthdata.Claim, 0, n)
				for i := 0; i < n; i++ {
					c := truthdata.Claim{
						Source: truthdata.SourceID(rng.Intn(len(cur.Sources))),
						Object: truthdata.ObjectID(rng.Intn(len(cur.Objects))),
						Attr:   truthdata.AttrID(rng.Intn(len(cur.Attrs))),
						Value:  values[rng.Intn(len(values))],
					}
					if hasConflict(cur, batch, c) {
						continue
					}
					batch = append(batch, c)
				}
				cur = extendDataset(cur, nil, nil, nil, batch)
			case 2: // duplicate an existing claim verbatim
				c := cur.Claims[rng.Intn(len(cur.Claims))]
				cur = extendDataset(cur, nil, nil, nil, []truthdata.Claim{c})
			case 3: // grow a random identifier space
				var next *truthdata.Dataset
				switch op / 4 % 3 {
				case 0:
					s := truthdata.SourceID(len(cur.Sources))
					next = extendDataset(cur, []string{fmt.Sprintf("s-new-%d", s)}, nil, nil, []truthdata.Claim{
						{Source: s, Object: truthdata.ObjectID(rng.Intn(len(cur.Objects))), Attr: truthdata.AttrID(rng.Intn(len(cur.Attrs))), Value: values[0]},
					})
				case 1:
					o := truthdata.ObjectID(len(cur.Objects))
					next = extendDataset(cur, nil, []string{fmt.Sprintf("o-new-%d", o)}, nil, []truthdata.Claim{
						{Source: truthdata.SourceID(rng.Intn(len(cur.Sources))), Object: o, Attr: truthdata.AttrID(rng.Intn(len(cur.Attrs))), Value: values[1]},
					})
				default:
					a := truthdata.AttrID(len(cur.Attrs))
					next = extendDataset(cur, nil, nil, []string{fmt.Sprintf("a-new-%d", a)}, []truthdata.Claim{
						{Source: truthdata.SourceID(rng.Intn(len(cur.Sources))), Object: truthdata.ObjectID(rng.Intn(len(cur.Objects))), Attr: a, Value: values[2]},
					})
				}
				cur = next
			}
			if err := cur.Validate(); err != nil {
				t.Fatalf("fuzz generated an invalid dataset: %v", err)
			}
		}
		discover(255)
	})
}
