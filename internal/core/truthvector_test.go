package core

import (
	"testing"

	"tdac/internal/truthdata"
)

func vectorDataset(t *testing.T) *truthdata.Dataset {
	t.Helper()
	b := truthdata.NewBuilder("tv")
	// 2 objects, 2 attrs, 2 sources; source s1 agrees with the reference
	// everywhere it claims, s2 never does; one claim is missing.
	b.Claim("s1", "o1", "a1", "t")
	b.Claim("s2", "o1", "a1", "w")
	b.Claim("s1", "o1", "a2", "t")
	b.Claim("s2", "o1", "a2", "w")
	b.Claim("s1", "o2", "a1", "t")
	// (o2, a1, s2) and all of (o2, a2) missing.
	return b.MustBuild()
}

func refTruth() map[truthdata.Cell]string {
	return map[truthdata.Cell]string{
		{Object: 0, Attr: 0}: "t",
		{Object: 0, Attr: 1}: "t",
		{Object: 1, Attr: 0}: "t",
	}
}

func TestBuildTruthVectorsEquation1(t *testing.T) {
	d := vectorDataset(t)
	tv := BuildTruthVectors(d, refTruth(), false)
	if tv.Dim != d.NumObjects()*d.NumSources() {
		t.Fatalf("Dim = %d, want %d", tv.Dim, d.NumObjects()*d.NumSources())
	}
	if len(tv.Vectors) != d.NumAttrs() {
		t.Fatalf("%d vectors, want %d", len(tv.Vectors), d.NumAttrs())
	}
	// Columns: (o1,s1), (o1,s2), (o2,s1), (o2,s2).
	a1 := tv.Vectors[0]
	want1 := []float64{1, 0, 1, 0} // s1 right, s2 wrong; (o2,s2) missing -> 0
	for i := range want1 {
		if a1[i] != want1[i] {
			t.Errorf("a1[%d] = %v, want %v", i, a1[i], want1[i])
		}
	}
	a2 := tv.Vectors[1]
	want2 := []float64{1, 0, 0, 0}
	for i := range want2 {
		if a2[i] != want2[i] {
			t.Errorf("a2[%d] = %v, want %v", i, a2[i], want2[i])
		}
	}
	if tv.Masked {
		t.Error("Masked should be false")
	}
	if tv.Sparsity() != 0 {
		t.Error("unmasked sparsity must be 0")
	}
}

func TestBuildTruthVectorsMasked(t *testing.T) {
	d := vectorDataset(t)
	tv := BuildTruthVectors(d, refTruth(), true)
	a1 := tv.Vectors[0]
	if a1[3] != Missing {
		t.Errorf("missing (o2,s2) = %v, want Missing", a1[3])
	}
	if a1[0] != 1 || a1[1] != 0 {
		t.Errorf("claimed coordinates wrong: %v", a1[:2])
	}
	a2 := tv.Vectors[1]
	if a2[2] != Missing || a2[3] != Missing {
		t.Errorf("missing o2 coordinates = %v, want Missing", a2[2:])
	}
	// Sparsity: 3 missing coordinates of 8.
	if got, want := tv.Sparsity(), 3.0/8; got != want {
		t.Errorf("Sparsity = %v, want %v", got, want)
	}
}

func TestBuildTruthVectorsClaimNotInReference(t *testing.T) {
	d := vectorDataset(t)
	// Reference missing a cell entirely: claims there count as wrong.
	ref := refTruth()
	delete(ref, truthdata.Cell{Object: 1, Attr: 0})
	tv := BuildTruthVectors(d, ref, false)
	if tv.Vectors[0][2] != 0 {
		t.Errorf("claim without reference = %v, want 0", tv.Vectors[0][2])
	}
}

func TestIdenticallyReliableAttrsGetIdenticalVectors(t *testing.T) {
	d := vectorDataset(t)
	// a1 and a2 restricted to object o1 have identical agreement
	// patterns; with o2 claims removed their full vectors match.
	d.Claims = d.Claims[:4]
	tv := BuildTruthVectors(d, refTruth(), false)
	for i := range tv.Vectors[0] {
		if tv.Vectors[0][i] != tv.Vectors[1][i] {
			t.Fatalf("vectors differ at %d: %v vs %v", i, tv.Vectors[0], tv.Vectors[1])
		}
	}
}
