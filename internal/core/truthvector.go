// Package core implements TD-AC (Truth Discovery with Attribute
// Clustering), the paper's contribution: it abstracts the truth in the
// data into per-attribute truth vectors, finds an optimal partition of the
// attribute set with k-means scored by the silhouette index, runs a base
// truth discovery algorithm on every group, and merges the partial
// results (Algorithm 1).
package core

import (
	"tdac/internal/truthdata"
)

// Missing is the coordinate value encoding "source made no claim for this
// (object, attribute)" in masked truth vectors. Plain vectors follow the
// paper's Equation 1 and encode missing claims as 0, indistinguishable
// from wrong claims; the masked encoding feeds the sparse-aware distance
// of the future-work ablation.
const Missing = -1.0

// TruthVectors holds the matrix of attribute truth vectors: one row per
// attribute, one column per (object, source) pair.
type TruthVectors struct {
	// Vectors[a] is the truth vector of attribute a.
	Vectors [][]float64
	// Dim is |O|·|S|, the length of every vector.
	Dim int
	// Masked reports whether missing claims are encoded as Missing
	// rather than 0.
	Masked bool
}

// BuildTruthVectors realises the paper's Equation 1: given the reference
// truth predicted by a base algorithm, x(a, o, s) is 1 when source s
// claimed a value for attribute a of object o and that value matches the
// reference truth, else 0. When masked is true, the "no claim exists" case
// is encoded as Missing instead of 0.
func BuildTruthVectors(d *truthdata.Dataset, reference map[truthdata.Cell]string, masked bool) *TruthVectors {
	nA, nO, nS := d.NumAttrs(), d.NumObjects(), d.NumSources()
	dim := nO * nS
	tv := &TruthVectors{
		Vectors: make([][]float64, nA),
		Dim:     dim,
		Masked:  masked,
	}
	fill := 0.0
	if masked {
		fill = Missing
	}
	for a := range tv.Vectors {
		v := make([]float64, dim)
		if masked {
			for i := range v {
				v[i] = fill
			}
		}
		tv.Vectors[a] = v
	}
	for _, c := range d.Claims {
		col := int(c.Object)*nS + int(c.Source)
		x := 0.0
		if ref, ok := reference[c.Cell()]; ok && ref == c.Value {
			x = 1.0
		}
		tv.Vectors[c.Attr][col] = x
	}
	return tv
}

// Sparsity returns the fraction of coordinates marked Missing, 0 for
// unmasked matrices.
func (tv *TruthVectors) Sparsity() float64 {
	if !tv.Masked || len(tv.Vectors) == 0 || tv.Dim == 0 {
		return 0
	}
	missing := 0
	for _, v := range tv.Vectors {
		for _, x := range v {
			if x == Missing {
				missing++
			}
		}
	}
	return float64(missing) / float64(len(tv.Vectors)*tv.Dim)
}
