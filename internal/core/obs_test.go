package core

import (
	"testing"

	"tdac/internal/algorithms"
	"tdac/internal/obs"
	"tdac/internal/synth"
)

// TestStatsObservationIsInert is the observability PR's acceptance gate:
// attaching a Recorder must never alter what the pipeline computes. For
// every paper config, several seeds and both worker modes, a stats-on
// Run must return bit-identical truth, partitions, silhouettes and
// Explored tables to the stats-off run — while still producing a
// complete observation tree.
func TestStatsObservationIsInert(t *testing.T) {
	configs := map[string]synth.Config{
		"DS1": synth.DS1().Scaled(60),
		"DS2": synth.DS2().Scaled(60),
		"DS3": synth.DS3().Scaled(60),
	}
	for name, cfg := range configs {
		cfg.Attrs = 12
		cfg.GroupSizes = []int{4, 4, 2, 2}
		g, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			for _, workers := range []int{1, 4} {
				plain := &TDAC{Base: algorithms.NewAccu(), Workers: workers}
				plain.KMeans.Seed = seed
				want, err := plain.Run(g.Dataset)
				if err != nil {
					t.Fatal(err)
				}
				if want.Stats != nil {
					t.Fatalf("%s: stats-off run has Stats", name)
				}

				observed := &TDAC{Base: algorithms.NewAccu(), Workers: workers}
				observed.KMeans.Seed = seed
				observed.Recorder = obs.NewRecorder(nil)
				got, err := observed.Run(g.Dataset)
				if err != nil {
					t.Fatal(err)
				}

				if !got.Partition.Equal(want.Partition) {
					t.Fatalf("%s seed %d workers %d: partition %v, stats-off %v",
						name, seed, workers, got.Partition, want.Partition)
				}
				if got.Silhouette != want.Silhouette {
					t.Fatalf("%s seed %d workers %d: silhouette %v, stats-off %v",
						name, seed, workers, got.Silhouette, want.Silhouette)
				}
				if len(got.Explored) != len(want.Explored) {
					t.Fatalf("%s seed %d workers %d: %d explored, stats-off %d",
						name, seed, workers, len(got.Explored), len(want.Explored))
				}
				for i := range want.Explored {
					if got.Explored[i] != want.Explored[i] {
						t.Fatalf("%s seed %d workers %d: explored[%d] = %+v, stats-off %+v",
							name, seed, workers, i, got.Explored[i], want.Explored[i])
					}
				}
				if len(got.Truth) != len(want.Truth) {
					t.Fatalf("%s seed %d workers %d: truth sizes %d vs %d",
						name, seed, workers, len(got.Truth), len(want.Truth))
				}
				for cell, v := range want.Truth {
					if got.Truth[cell] != v {
						t.Fatalf("%s seed %d workers %d: truth[%v] = %q, stats-off %q",
							name, seed, workers, cell, got.Truth[cell], v)
					}
				}
				for s := range want.Trust {
					if got.Trust[s] != want.Trust[s] {
						t.Fatalf("%s seed %d workers %d: trust[%d] = %v, stats-off %v",
							name, seed, workers, s, got.Trust[s], want.Trust[s])
					}
				}

				assertCompleteTree(t, got.Stats, len(want.Partition), len(want.Explored))
			}
		}
	}
}

// assertCompleteTree checks the observed run produced the full Discover
// tree: all six phases, one matrix build, one sweep covering every
// explored k, and one record per partition group.
func assertCompleteTree(t *testing.T, s *obs.RunStats, groups, explored int) {
	t.Helper()
	if s == nil {
		t.Fatal("observed run returned nil Stats")
	}
	if s.Total <= 0 {
		t.Errorf("Total = %v, want > 0", s.Total)
	}
	for _, p := range []obs.Phase{
		obs.PhaseReference, obs.PhaseTruthVectors, obs.PhaseDistanceMatrix,
		obs.PhaseKSweep, obs.PhaseBaseRuns, obs.PhaseMerge,
	} {
		found := false
		for _, ps := range s.Phases {
			if ps.Phase == p {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("phase %q missing from tree", p)
		}
	}
	if len(s.Matrix) != 1 || !s.Matrix[0].Packed {
		t.Errorf("matrix records = %+v, want one packed build", s.Matrix)
	}
	if len(s.Sweeps) != 1 || len(s.Sweeps[0].Ks) != explored {
		t.Errorf("sweeps = %d with %d ks, want 1 with %d", len(s.Sweeps), len(s.Sweeps[0].Ks), explored)
	}
	if len(s.Groups) != groups {
		t.Errorf("group records = %d, want %d", len(s.Groups), groups)
	}
	if s.Cache.SilhouetteEvals != explored {
		t.Errorf("cache silhouette evals = %d, want %d", s.Cache.SilhouetteEvals, explored)
	}
}

// TestStabilityStatsAccumulateAcrossRuns pins the CheckStability shape:
// one reference/truth-vectors prologue plus one distance-matrix/k-sweep
// pair per reseeded run, with results identical to the unobserved check.
func TestStabilityStatsAccumulateAcrossRuns(t *testing.T) {
	cfg := synth.DS1().Scaled(40)
	g, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 4
	plain := &TDAC{Base: algorithms.NewMajorityVote()}
	want, err := plain.CheckStability(g.Dataset, runs)
	if err != nil {
		t.Fatal(err)
	}
	observed := &TDAC{Base: algorithms.NewMajorityVote()}
	observed.Recorder = obs.NewRecorder(nil)
	got, err := observed.CheckStability(g.Dataset, runs)
	if err != nil {
		t.Fatal(err)
	}
	if got.MeanRandIndex != want.MeanRandIndex || got.ModalShare != want.ModalShare {
		t.Fatalf("observed stability (%v,%v) differs from (%v,%v)",
			got.MeanRandIndex, got.ModalShare, want.MeanRandIndex, want.ModalShare)
	}
	s := got.Stats
	if s == nil {
		t.Fatal("nil Stats on observed stability check")
	}
	if n := len(s.Sweeps); n != runs {
		t.Errorf("sweeps = %d, want %d (one per reseeded run)", n, runs)
	}
	if n := len(s.Matrix); n != runs {
		t.Errorf("matrix builds = %d, want %d", n, runs)
	}
	if d := s.PhaseDuration(obs.PhaseReference); d <= 0 {
		t.Errorf("reference phase = %v, want > 0", d)
	}
	// Each reseeded run derives a distinct seed; the tree must show them.
	seeds := map[int64]bool{}
	for _, sw := range s.Sweeps {
		seeds[sw.Seed] = true
	}
	if len(seeds) != runs {
		t.Errorf("distinct sweep seeds = %d, want %d", len(seeds), runs)
	}
}
