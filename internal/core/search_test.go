package core

import (
	"strings"
	"testing"

	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/synth"
)

// wideDS builds a dataset with enough attributes that the sublinear
// strategies have room to skip ks: 40 attrs in 4 planted groups give an
// exhaustive range of [2,39] = 38 candidate ks.
func wideDS(t testing.TB) *synth.Generated {
	t.Helper()
	g, err := synth.Generate(synth.Config{
		Name:       "wide",
		Attrs:      40,
		Objects:    60,
		Sources:    10,
		GroupSizes: []int{10, 10, 10, 10},
		M1:         1, M2: 0, M3: 0.9,
		FalseValues:    50,
		DistractorProb: 0.3,
		Coverage:       1,
		Seed:           71,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runSearch(t *testing.T, g *synth.Generated, strategy string) *Outcome {
	t.Helper()
	tdac := New(algorithms.NewMajorityVote())
	tdac.Search = strategy
	out, err := tdac.Run(g.Dataset)
	if err != nil {
		t.Fatalf("Search=%q: %v", strategy, err)
	}
	return out
}

func TestSearchMatchesExhaustiveOracle(t *testing.T) {
	g := wideDS(t)
	full := runSearch(t, g, SearchExhaustive)
	wantKs := len(g.Dataset.Attrs) - 2 // k ∈ [2, |A|-1]
	if len(full.Explored) != wantKs {
		t.Fatalf("exhaustive probed %d ks, want %d", len(full.Explored), wantKs)
	}
	for _, strategy := range []string{SearchGolden, SearchMDL} {
		out := runSearch(t, g, strategy)
		// The search must land on (at least) the exhaustive optimum —
		// probes are warm-started, so the silhouette at the best k can
		// only match or exceed the cold-seeded sweep's.
		if out.Silhouette < full.Silhouette-1e-9 {
			t.Errorf("%s silhouette %v below exhaustive %v", strategy, out.Silhouette, full.Silhouette)
		}
		if !out.Partition.Equal(g.Planted) {
			t.Errorf("%s partition %s != planted %s", strategy, out.Partition, g.Planted)
		}
		if len(out.Explored) >= len(full.Explored) {
			t.Errorf("%s probed %d ks, no fewer than exhaustive %d", strategy, len(out.Explored), len(full.Explored))
		}
	}
}

func TestSearchExploredAscendingWithHoles(t *testing.T) {
	g := wideDS(t)
	for _, strategy := range []string{SearchGolden, SearchMDL} {
		out := runSearch(t, g, strategy)
		last := 1
		for i, ks := range out.Explored {
			if ks.K <= last {
				t.Fatalf("%s Explored[%d].K = %d not ascending past %d", strategy, i, ks.K, last)
			}
			if ks.K < 2 || ks.K > len(g.Dataset.Attrs)-1 {
				t.Fatalf("%s probed out-of-range k=%d", strategy, ks.K)
			}
			last = ks.K
		}
	}
}

func TestSearchMDLProbesPrefix(t *testing.T) {
	// The MDL scan walks k ascending and stops; its probe set must be a
	// contiguous prefix of the range.
	out := runSearch(t, wideDS(t), SearchMDL)
	for i, ks := range out.Explored {
		if ks.K != i+2 {
			t.Fatalf("Explored[%d].K = %d, want contiguous prefix value %d", i, ks.K, i+2)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	g := wideDS(t)
	for _, strategy := range []string{SearchGolden, SearchMDL} {
		a := runSearch(t, g, strategy)
		b := runSearch(t, g, strategy)
		if !a.Partition.Equal(b.Partition) || a.Silhouette != b.Silhouette {
			t.Fatalf("%s is not deterministic", strategy)
		}
		if len(a.Explored) != len(b.Explored) {
			t.Fatalf("%s probe sets differ across runs", strategy)
		}
		for i := range a.Explored {
			if a.Explored[i] != b.Explored[i] {
				t.Fatalf("%s Explored[%d] differs: %+v vs %+v", strategy, i, a.Explored[i], b.Explored[i])
			}
		}
	}
}

func TestSearchRecoversPlantedOnSmallRange(t *testing.T) {
	// DS2 has only 6 attrs (k range [2,5]); the strategies must still
	// land on the planted 3-group partition.
	d, planted := smallDS1(t)
	for _, strategy := range []string{SearchGolden, SearchMDL} {
		tdac := New(algorithms.NewMajorityVote())
		tdac.Search = strategy
		out, err := tdac.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Partition.Equal(planted) {
			t.Errorf("%s partition %s != planted %s", strategy, out.Partition, planted)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	d, _ := smallDS1(t)

	unknown := New(algorithms.NewMajorityVote())
	unknown.Search = "bisect"
	if _, err := unknown.Run(d); err == nil || !strings.Contains(err.Error(), "unknown Search") {
		t.Errorf("unknown strategy: err = %v", err)
	}

	masked := New(algorithms.NewMajorityVote())
	masked.Search = SearchGolden
	masked.Masked = true
	if _, err := masked.Run(d); err == nil || !strings.Contains(err.Error(), "Masked") {
		t.Errorf("masked + search: err = %v", err)
	}

	custom := New(algorithms.NewMajorityVote())
	custom.Search = SearchMDL
	custom.Clusterer = &clustering.Agglomerative{Linkage: clustering.AverageLinkage, Distance: clustering.Hamming{}}
	if _, err := custom.Run(d); err == nil || !strings.Contains(err.Error(), "KMeans") {
		t.Errorf("custom clusterer + search: err = %v", err)
	}
}

func TestKRangeValidation(t *testing.T) {
	d, _ := smallDS1(t)
	cases := []struct {
		name       string
		minK, maxK int
		wantErr    string
	}{
		{"negative-min", -1, 0, "cannot be negative"},
		{"negative-max", 0, -3, "cannot be negative"},
		{"inverted", 5, 3, "inverted k range"},
		{"min-beyond-attrs", 9, 0, "largest usable cluster count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tdac := New(algorithms.NewMajorityVote())
			tdac.MinK = tc.minK
			tdac.MaxK = tc.maxK
			_, err := tdac.Run(d)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("MinK=%d MaxK=%d: err = %v, want %q", tc.minK, tc.maxK, err, tc.wantErr)
			}
		})
	}
	// MaxK beyond |A|-1 stays legal: it clips, it does not error.
	clip := New(algorithms.NewMajorityVote())
	clip.MaxK = 100
	if _, err := clip.Run(d); err != nil {
		t.Errorf("MaxK beyond range should clip, got %v", err)
	}
}
