package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"tdac/internal/algorithms"
	"tdac/internal/partition"
)

// countdownCtx is a deterministic cancellation source: Err reports the
// context cancelled starting with the n-th call. It lets tests hit the
// per-round context checks of the indexed hot paths without racing a
// timer against real work.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestGroupPoolBitIdentical pins the bounded per-group worker pool: for
// every pool size the merged result must be bit-identical to the
// sequential order, on a partition with more groups than workers. Under
// `go test -race` (the CI invocation) this also proves the pool's
// partials writes are race-free.
func TestGroupPoolBitIdentical(t *testing.T) {
	d, _ := smallDS1(t)
	// Split into singleton groups so the pool has more groups than
	// workers and must recycle goroutines.
	part := partition.Singletons(d.NumAttrs())
	seq, err := RunOnPartition(algorithms.NewAccu(), d, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 16} {
		td := New(algorithms.NewAccu())
		td.Parallel = true
		td.Workers = workers
		res, err := td.discoverOnPartition(context.Background(), d, part)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Truth) != len(seq.Truth) {
			t.Fatalf("workers=%d: %d truth cells, sequential %d", workers, len(res.Truth), len(seq.Truth))
		}
		for cell, v := range seq.Truth {
			if res.Truth[cell] != v {
				t.Fatalf("workers=%d: truth diverges at %v: %q vs %q", workers, cell, res.Truth[cell], v)
			}
		}
		for s := range seq.Trust {
			if res.Trust[s] != seq.Trust[s] {
				t.Fatalf("workers=%d: trust diverges at source %d: %v vs %v", workers, s, res.Trust[s], seq.Trust[s])
			}
		}
	}
}

// TestReferenceRunCancelsMidAlgorithm proves cancellation reaches inside
// a base run: a context that flips to cancelled after the pipeline's
// upfront checks must interrupt the reference algorithm between update
// rounds, not run it to completion.
func TestReferenceRunCancelsMidAlgorithm(t *testing.T) {
	d, _ := smallDS1(t)
	// Survive RunContext's upfront ctx.Err() check, then cancel on the
	// next check — the reference run's first round.
	ctx := newCountdownCtx(1)
	_, err := New(algorithms.NewAccu()).RunContext(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled from inside the reference run", err)
	}
}

// TestGroupRunsCancelMidAlgorithm proves the per-group base runs honour
// cancellation mid-algorithm: with a generous countdown the pipeline
// clears its reference phase and k-sweep, and the cancellation lands
// inside (or between) the per-group runs.
func TestGroupRunsCancelMidAlgorithm(t *testing.T) {
	d, _ := smallDS1(t)
	probe := New(algorithms.NewAccu()).Run
	out, err := probe(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Partition) < 2 {
		t.Skipf("dataset yields %d group(s); need 2+ to land cancellation in the group phase", len(out.Partition))
	}
	for n := int64(2); ; n++ {
		ctx := newCountdownCtx(n)
		_, err := New(algorithms.NewAccu()).RunContext(ctx, d)
		if err == nil {
			// Countdown outlived the whole run: every earlier value
			// already proved interruption at its stage.
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("countdown %d: got %v, want context.Canceled", n, err)
		}
		if n > 10_000 {
			t.Fatal("run never completes even with 10k allowed context checks")
		}
	}
}
