package deadline

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestStampAndRemaining(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	h := make(http.Header)
	Stamp(h, ctx)

	r := &http.Request{Header: h}
	rem, ok := Remaining(r)
	if !ok {
		t.Fatal("stamped header not parsed")
	}
	if rem <= time.Second || rem > 2*time.Second {
		t.Fatalf("remaining = %v, want within (1s, 2s]", rem)
	}
}

func TestStampWithoutDeadlineIsNoop(t *testing.T) {
	h := make(http.Header)
	Stamp(h, context.Background())
	if got := h.Get(Header); got != "" {
		t.Fatalf("header stamped without a deadline: %q", got)
	}
}

func TestRemainingTable(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  time.Duration
		ok    bool
	}{
		{"absent", "", 0, false},
		{"garbage", "soon", 0, false},
		{"float", "12.5", 0, false},
		{"positive", "1500", 1500 * time.Millisecond, true},
		{"zero", "0", 0, true},
		{"negative", "-20", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := make(http.Header)
			if tc.value != "" {
				h.Set(Header, tc.value)
			}
			got, ok := Remaining(&http.Request{Header: h})
			if got != tc.want || ok != tc.ok {
				t.Fatalf("Remaining(%q) = (%v, %v), want (%v, %v)", tc.value, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestStampRemainingClampsNegative(t *testing.T) {
	h := make(http.Header)
	StampRemaining(h, -time.Second)
	if got := h.Get(Header); got != "0" {
		t.Fatalf("negative budget stamped as %q, want 0", got)
	}
	StampRemaining(h, 250*time.Millisecond)
	if got := h.Get(Header); got != "250" {
		t.Fatalf("re-stamp = %q, want 250", got)
	}
}
