// Package deadline propagates a caller's time budget across tdac's
// network hops. The client stamps its context deadline into the
// X-Tdac-Deadline header as remaining milliseconds, the router
// decrements it by the time it spent before forwarding, and the shard
// clamps its request timeout to min(configured, propagated) — so no
// hop keeps working on a request the caller has already abandoned.
// Carrying a remaining duration rather than an absolute wall time
// keeps the scheme immune to clock skew between hops.
package deadline

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// Header is the hop-to-hop budget header. Its value is the integer
// number of milliseconds the caller is still willing to wait.
const Header = "X-Tdac-Deadline"

// Stamp records ctx's deadline (if any) into h as a remaining budget.
// A context without a deadline leaves h untouched.
func Stamp(h http.Header, ctx context.Context) {
	if dl, ok := ctx.Deadline(); ok {
		StampRemaining(h, time.Until(dl))
	}
}

// StampRemaining records d as the remaining budget in h, replacing any
// previous value. Non-positive budgets are stamped as 0 so the next
// hop refuses immediately instead of starting doomed work.
func StampRemaining(h http.Header, d time.Duration) {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	h.Set(Header, strconv.FormatInt(ms, 10))
}

// Remaining parses the budget from an incoming request. ok is false
// when the header is absent or malformed (a garbage value from an
// unknown client is ignored rather than trusted). A stamped budget of
// zero or less returns (0, true): the caller is already gone.
func Remaining(r *http.Request) (time.Duration, bool) {
	v := r.Header.Get(Header)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	if ms <= 0 {
		return 0, true
	}
	return time.Duration(ms) * time.Millisecond, true
}
