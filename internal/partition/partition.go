// Package partition provides set partitions of attribute sets: the
// Partition type with canonicalisation, formatting and comparison, full
// enumeration via restricted growth strings (the substrate of the
// brute-force AccuGenPartition baseline), and Bell/Stirling counting to
// reason about enumeration cost.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"tdac/internal/truthdata"
)

// Partition is a set partition of attribute ids: a list of disjoint,
// non-empty groups covering the attribute set.
type Partition [][]truthdata.AttrID

// Canonical returns an equivalent partition in canonical form: each group
// sorted ascending, groups ordered by their first element. Two partitions
// are equal iff their canonical forms are deeply equal.
func (p Partition) Canonical() Partition {
	out := make(Partition, 0, len(p))
	for _, g := range p {
		if len(g) == 0 {
			continue
		}
		gg := append([]truthdata.AttrID(nil), g...)
		sort.Slice(gg, func(i, j int) bool { return gg[i] < gg[j] })
		out = append(out, gg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Equal reports whether p and q describe the same set partition.
func (p Partition) Equal(q Partition) bool {
	a, b := p.Canonical(), q.Canonical()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Size returns the number of attributes covered.
func (p Partition) Size() int {
	n := 0
	for _, g := range p {
		n += len(g)
	}
	return n
}

// String renders the canonical form in the paper's Table 5 notation with
// 1-based attribute numbers: "[(1,2),(4,6),(3,5)]" — except that groups
// are canonically ordered.
func (p Partition) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, g := range p.Canonical() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('(')
		for j, a := range g {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", int(a)+1)
		}
		b.WriteByte(')')
	}
	b.WriteByte(']')
	return b.String()
}

// FromAssign builds a partition from a cluster-assignment vector: attrs[i]
// belongs to group assign[i]. Empty groups vanish.
func FromAssign(assign []int, k int) Partition {
	groups := make(Partition, k)
	for i, g := range assign {
		groups[g] = append(groups[g], truthdata.AttrID(i))
	}
	return groups.Canonical()
}

// Whole returns the trivial single-group partition of n attributes.
func Whole(n int) Partition {
	g := make([]truthdata.AttrID, n)
	for i := range g {
		g[i] = truthdata.AttrID(i)
	}
	return Partition{g}
}

// Singletons returns the finest partition of n attributes.
func Singletons(n int) Partition {
	p := make(Partition, n)
	for i := range p {
		p[i] = []truthdata.AttrID{truthdata.AttrID(i)}
	}
	return p
}

// RandIndex measures agreement between two partitions of the same
// attribute set as the fraction of attribute pairs on which they agree
// (same group in both, or different groups in both). 1 means identical.
func RandIndex(p, q Partition) float64 {
	n := p.Size()
	if n != q.Size() || n < 2 {
		if p.Equal(q) {
			return 1
		}
		return 0
	}
	gp := groupOf(p, n)
	gq := groupOf(q, n)
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			sameP := gp[i] == gp[j]
			sameQ := gq[i] == gq[j]
			if sameP == sameQ {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

func groupOf(p Partition, n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = -1
	}
	for gi, group := range p {
		for _, a := range group {
			if int(a) >= 0 && int(a) < n {
				g[a] = gi
			}
		}
	}
	return g
}
