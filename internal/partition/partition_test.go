package partition

import (
	"testing"

	"tdac/internal/truthdata"
)

func ids(xs ...int) []truthdata.AttrID {
	out := make([]truthdata.AttrID, len(xs))
	for i, x := range xs {
		out[i] = truthdata.AttrID(x)
	}
	return out
}

func TestCanonicalSortsGroupsAndMembers(t *testing.T) {
	p := Partition{ids(5, 3), ids(0, 2, 1)}
	c := p.Canonical()
	if c.String() != "[(1,2,3),(4,6)]" {
		t.Errorf("Canonical().String() = %s", c.String())
	}
}

func TestCanonicalDropsEmptyGroups(t *testing.T) {
	p := Partition{ids(1), nil, ids(0)}
	if got := len(p.Canonical()); got != 2 {
		t.Errorf("Canonical kept %d groups, want 2", got)
	}
}

func TestEqual(t *testing.T) {
	a := Partition{ids(0, 1), ids(2)}
	b := Partition{ids(2), ids(1, 0)}
	if !a.Equal(b) {
		t.Error("permuted partitions should be equal")
	}
	c := Partition{ids(0), ids(1, 2)}
	if a.Equal(c) {
		t.Error("different partitions reported equal")
	}
	if a.Equal(Partition{ids(0, 1)}) {
		t.Error("partitions of different sizes reported equal")
	}
}

func TestStringUsesOneBasedAttrs(t *testing.T) {
	p := Partition{ids(0, 2), ids(1)}
	if got := p.String(); got != "[(1,3),(2)]" {
		t.Errorf("String() = %s, want [(1,3),(2)]", got)
	}
}

func TestFromAssign(t *testing.T) {
	p := FromAssign([]int{0, 1, 0, 1}, 2)
	want := Partition{ids(0, 2), ids(1, 3)}
	if !p.Equal(want) {
		t.Errorf("FromAssign = %s, want %s", p, want)
	}
}

func TestFromAssignSkipsEmptyClusters(t *testing.T) {
	p := FromAssign([]int{2, 2, 0}, 3)
	if len(p) != 2 {
		t.Errorf("FromAssign kept %d groups, want 2", len(p))
	}
}

func TestWholeAndSingletons(t *testing.T) {
	w := Whole(4)
	if len(w) != 1 || len(w[0]) != 4 {
		t.Errorf("Whole(4) = %s", w)
	}
	s := Singletons(3)
	if len(s) != 3 {
		t.Errorf("Singletons(3) = %s", s)
	}
	if s.Size() != 3 || w.Size() != 4 {
		t.Error("Size() wrong")
	}
}

func TestRandIndex(t *testing.T) {
	a := Partition{ids(0, 1), ids(2, 3)}
	if got := RandIndex(a, a); got != 1 {
		t.Errorf("RandIndex(a,a) = %v, want 1", got)
	}
	b := Partition{ids(0, 2), ids(1, 3)}
	got := RandIndex(a, b)
	// Pairs: (0,1) split in b; (2,3) split in b; (0,2) joined in b only;
	// (1,3) joined in b only; (0,3) split in both (agree); (1,2) split in
	// both (agree). 2 agreements of 6.
	if !closeF(got, 2.0/6) {
		t.Errorf("RandIndex = %v, want 1/3", got)
	}
	// Different sizes.
	if got := RandIndex(a, Partition{ids(0)}); got != 0 {
		t.Errorf("RandIndex on mismatched sizes = %v, want 0", got)
	}
}

func closeF(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
