package partition

import (
	"testing"
	"testing/quick"
)

func TestBellNumbers(t *testing.T) {
	want := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975}
	for n, w := range want {
		if got := Bell(n).Int64(); got != w {
			t.Errorf("Bell(%d) = %d, want %d", n, got, w)
		}
	}
	if Bell(-1).Sign() != 0 {
		t.Error("Bell(-1) != 0")
	}
}

func TestStirling2KnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {4, 2, 7}, {5, 3, 25}, {6, 3, 90},
		{6, 1, 1}, {6, 6, 1}, {5, 0, 0}, {3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.k).Int64(); got != c.want {
			t.Errorf("S(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// Bell(n) must equal the sum of Stirling2(n,k) over k.
func TestBellStirlingConsistency(t *testing.T) {
	for n := 0; n <= 10; n++ {
		var sum int64
		for k := 0; k <= n; k++ {
			sum += Stirling2(n, k).Int64()
		}
		if sum != Bell(n).Int64() {
			t.Errorf("sum_k S(%d,k) = %d, want Bell = %d", n, sum, Bell(n).Int64())
		}
	}
}

func TestEnumerateCountsMatchBell(t *testing.T) {
	for n := 1; n <= 8; n++ {
		got, err := Count(n)
		if err != nil {
			t.Fatalf("Count(%d): %v", n, err)
		}
		if int64(got) != Bell(n).Int64() {
			t.Errorf("Count(%d) = %d, want Bell = %d", n, got, Bell(n).Int64())
		}
	}
}

func TestEnumerateRejectsHugeSets(t *testing.T) {
	if err := Enumerate(MaxEnumerate+1, func(Partition) bool { return true }); err == nil {
		t.Error("Enumerate accepted a set above MaxEnumerate")
	}
	if err := Enumerate(0, func(Partition) bool { return true }); err == nil {
		t.Error("Enumerate accepted an empty set")
	}
}

func TestEnumerateStopsEarly(t *testing.T) {
	n := 0
	err := Enumerate(5, func(Partition) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d partitions, want 3", n)
	}
}

func TestEnumerateEmitsDistinctValidPartitions(t *testing.T) {
	const n = 6
	seen := map[string]bool{}
	err := Enumerate(n, func(p Partition) bool {
		if p.Size() != n {
			t.Fatalf("partition %s does not cover %d attrs", p, n)
		}
		// Disjointness: every attr appears exactly once.
		count := map[truthAttr]int{}
		for _, g := range p {
			if len(g) == 0 {
				t.Fatalf("partition %s has an empty group", p)
			}
			for _, a := range g {
				count[truthAttr(a)]++
			}
		}
		for a, c := range count {
			if c != 1 {
				t.Fatalf("attr %d appears %d times in %s", a, c, p)
			}
		}
		key := p.String()
		if seen[key] {
			t.Fatalf("duplicate partition %s", key)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(seen)) != Bell(n).Int64() {
		t.Errorf("emitted %d distinct partitions, want %d", len(seen), Bell(n).Int64())
	}
}

type truthAttr int

func TestEnumerateFirstAndLast(t *testing.T) {
	var first, last Partition
	_ = Enumerate(4, func(p Partition) bool {
		if first == nil {
			first = p
		}
		last = p
		return true
	})
	if first.String() != "[(1,2,3,4)]" {
		t.Errorf("first partition = %s, want the whole set", first)
	}
	if !last.Equal(Singletons(4)) {
		t.Errorf("last partition = %s, want all singletons", last)
	}
}

// Property: canonicalisation is idempotent over enumerated partitions.
func TestCanonicalIdempotentProperty(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%6) + 1
		ok := true
		_ = Enumerate(size, func(p Partition) bool {
			c1 := p.Canonical()
			c2 := c1.Canonical()
			if !c1.Equal(c2) || c1.String() != c2.String() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
