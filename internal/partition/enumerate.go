package partition

import (
	"fmt"
	"math/big"

	"tdac/internal/truthdata"
)

// MaxEnumerate bounds full partition enumeration: Bell(15) ≈ 1.38e9 is
// already hopeless, so enumeration refuses sets larger than this. The
// brute-force baseline is only meant for the paper's 6-attribute setting.
const MaxEnumerate = 14

// Bell returns the n-th Bell number — the number of set partitions of an
// n-element set — computed via the Bell triangle with big integers.
func Bell(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	row := []*big.Int{big.NewInt(1)}
	for i := 1; i <= n; i++ {
		next := make([]*big.Int, i+1)
		next[0] = row[len(row)-1]
		for j := 1; j <= i; j++ {
			next[j] = new(big.Int).Add(next[j-1], row[j-1])
		}
		row = next
	}
	return row[0]
}

// Stirling2 returns the Stirling number of the second kind S(n, k): the
// number of partitions of an n-set into exactly k non-empty groups.
func Stirling2(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	if n == 0 && k == 0 {
		return big.NewInt(1)
	}
	if k == 0 {
		return big.NewInt(0)
	}
	// S(n,k) = k*S(n-1,k) + S(n-1,k-1), row by row.
	prev := make([]*big.Int, k+1)
	cur := make([]*big.Int, k+1)
	for j := range prev {
		prev[j] = big.NewInt(0)
		cur[j] = big.NewInt(0)
	}
	prev[0] = big.NewInt(1) // S(0,0)
	for i := 1; i <= n; i++ {
		cur[0] = big.NewInt(0)
		for j := 1; j <= k && j <= i; j++ {
			cur[j] = new(big.Int).Mul(big.NewInt(int64(j)), prev[j])
			cur[j].Add(cur[j], prev[j-1])
		}
		prev, cur = cur, prev
	}
	return prev[k]
}

// Enumerate calls fn with every set partition of {0, …, n-1}, generated
// from restricted growth strings in lexicographic order. The Partition
// passed to fn is freshly allocated; fn may retain it. Enumeration stops
// early when fn returns false. n above MaxEnumerate is an error.
func Enumerate(n int, fn func(Partition) bool) error {
	if n < 1 {
		return fmt.Errorf("partition: cannot enumerate partitions of %d elements", n)
	}
	if n > MaxEnumerate {
		return fmt.Errorf("partition: refusing to enumerate Bell(%d)=%s partitions (max %d elements)",
			n, Bell(n).String(), MaxEnumerate)
	}
	// A restricted growth string a[0..n-1] has a[0]=0 and
	// a[i] <= max(a[0..i-1]) + 1; each encodes exactly one set partition.
	a := make([]int, n)
	b := make([]int, n) // b[i] = max(a[0..i-1]) + 1, with b[0] = 1
	for {
		// Emit current string.
		k := 0
		for _, x := range a {
			if x+1 > k {
				k = x + 1
			}
		}
		groups := make(Partition, k)
		for i, g := range a {
			groups[g] = append(groups[g], truthdata.AttrID(i))
		}
		if !fn(groups) {
			return nil
		}
		// Advance to the next restricted growth string: b[j] is the
		// maximum value a[j] may take (1 + max of the prefix).
		b[0] = 0
		for j := 1; j < n; j++ {
			b[j] = b[j-1]
			if a[j-1]+1 > b[j-1] {
				b[j] = a[j-1] + 1
			}
		}
		i := n - 1
		for i > 0 && a[i] >= b[i] {
			i--
		}
		if i == 0 {
			return nil // wrapped: all strings emitted
		}
		a[i]++
		for j := i + 1; j < n; j++ {
			a[j] = 0
		}
	}
}

// Count returns the number of partitions Enumerate would emit, as a
// cross-check against Bell.
func Count(n int) (int, error) {
	total := 0
	err := Enumerate(n, func(Partition) bool {
		total++
		return true
	})
	return total, err
}
