// Package report validates this reproduction against the paper: it runs
// the repository's experiments, compares the measurements with the
// published numbers recorded in internal/paper, and asserts every
// qualitative claim of the paper's Section 4.5 as a pass/fail shape
// check. Absolute values are reported side by side but never asserted —
// the datasets are simulated and the algorithms re-implemented.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tdac/internal/experiments"
	"tdac/internal/genpartition"
	"tdac/internal/paper"
	"tdac/internal/partition"
)

// Check is the outcome of one claim validation.
type Check struct {
	Claim  paper.Claim
	Passed bool
	// Detail explains what was measured.
	Detail string
}

// Report bundles the checks with paper-vs-measured comparison tables.
type Report struct {
	Checks      []Check
	Comparisons []*experiments.Table
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return true
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "TD-AC reproduction report — %d shape checks\n\n", len(r.Checks))
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(w, "[%s] %s\n      claim: %s\n      measured: %s\n",
			status, c.Claim.ID, c.Claim.Statement, c.Detail)
	}
	fmt.Fprintln(w)
	for _, t := range r.Comparisons {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// synthIDs maps runner dataset ids to the paper's labels.
var synthIDs = []string{"DS1", "DS2", "DS3"}

// realIDs maps paper labels to runner ids.
var realIDs = map[string]string{
	"Exam 32":  "exam32",
	"Exam 62":  "exam62",
	"Exam 124": "exam124",
	"Stocks":   "stocks",
	"Flights":  "flights",
}

// Generate runs everything the checks need (reusing the runner's cache)
// and produces the report.
func Generate(r *experiments.Runner) (*Report, error) {
	rep := &Report{}

	type synthRow struct {
		tdac, accu, bestStd, oracle *experiments.Measurement
		maxW, avgW                  *experiments.Measurement
		planted                     partition.Partition
	}
	synth := map[string]*synthRow{}
	stdSpecs := []string{"MajorityVote", "TruthFinder", "Depen", "Accu", "AccuSim"}
	for _, ds := range synthIDs {
		row := &synthRow{}
		var err error
		if row.tdac, err = r.Measure(ds, experiments.TDACSpec("Accu")); err != nil {
			return nil, err
		}
		if row.accu, err = r.Measure(ds, experiments.Std("Accu")); err != nil {
			return nil, err
		}
		for _, name := range stdSpecs {
			m, err := r.Measure(ds, experiments.Std(name))
			if err != nil {
				return nil, err
			}
			if row.bestStd == nil || m.Report.Accuracy > row.bestStd.Report.Accuracy {
				row.bestStd = m
			}
		}
		if row.oracle, err = r.Measure(ds, experiments.GenPartitionSpec("Accu", genpartition.Oracle)); err != nil {
			return nil, err
		}
		if row.maxW, err = r.Measure(ds, experiments.GenPartitionSpec("Accu", genpartition.Max)); err != nil {
			return nil, err
		}
		if row.avgW, err = r.Measure(ds, experiments.GenPartitionSpec("Accu", genpartition.Avg)); err != nil {
			return nil, err
		}
		if row.planted, err = r.Planted(ds); err != nil {
			return nil, err
		}
		synth[ds] = row
	}

	// Claim: partitioning-wins.
	{
		ok := true
		var details []string
		for _, ds := range synthIDs {
			row := synth[ds]
			if row.tdac.Report.Accuracy < row.bestStd.Report.Accuracy {
				ok = false
			}
			details = append(details, fmt.Sprintf("%s: TD-AC %.3f vs best standard %.3f (%s)",
				ds, row.tdac.Report.Accuracy, row.bestStd.Report.Accuracy, row.bestStd.Algorithm))
		}
		rep.add("partitioning-wins", ok, details)
	}
	// Claim: tdac-tracks-oracle.
	{
		ok := true
		var details []string
		for _, ds := range synthIDs {
			row := synth[ds]
			gap := row.oracle.Report.Accuracy - row.tdac.Report.Accuracy
			if gap > 0.05 {
				ok = false
			}
			details = append(details, fmt.Sprintf("%s: Oracle-TD-AC gap %.3f", ds, gap))
		}
		rep.add("tdac-tracks-oracle", ok, details)
	}
	// Claim: tdac-improves-base.
	{
		ok := true
		var details []string
		for _, ds := range synthIDs {
			row := synth[ds]
			delta := row.tdac.Report.Accuracy - row.accu.Report.Accuracy
			if delta < 0.005 {
				ok = false
			}
			details = append(details, fmt.Sprintf("%s: %+.3f over Accu", ds, delta))
		}
		rep.add("tdac-improves-base", ok, details)
	}
	// Claim: tdac-fast.
	{
		ok := true
		var details []string
		for _, ds := range synthIDs {
			row := synth[ds]
			ratio := row.oracle.Runtime.Seconds() / row.tdac.Runtime.Seconds()
			if ratio < 5 {
				ok = false
			}
			details = append(details, fmt.Sprintf("%s: AccuGenPartition/TD-AC time ratio %.1fx", ds, ratio))
		}
		rep.add("tdac-fast", ok, details)
	}
	// Claim: tdac-one-iteration.
	{
		ok := true
		for _, ds := range synthIDs {
			if synth[ds].tdac.Iterations != 1 {
				ok = false
			}
		}
		rep.add("tdac-one-iteration", ok, []string{"TD-AC #Iteration = 1 on DS1–DS3"})
	}
	// Claim: partition-recovery. The paper's Table 5 argument is
	// holistic (the silhouette clusters are "the most structurally
	// homogeneous"), so the check compares mean Rand indexes across the
	// three configurations rather than per dataset.
	{
		var tdacSum, maxSum, avgSum float64
		var details []string
		for _, ds := range synthIDs {
			row := synth[ds]
			tdacRI := partition.RandIndex(row.tdac.Partition, row.planted)
			maxRI := partition.RandIndex(row.maxW.Partition, row.planted)
			avgRI := partition.RandIndex(row.avgW.Partition, row.planted)
			tdacSum += tdacRI
			maxSum += maxRI
			avgSum += avgRI
			details = append(details, fmt.Sprintf("%s: Rand index TD-AC %.2f vs Max %.2f / Avg %.2f",
				ds, tdacRI, maxRI, avgRI))
		}
		ok := tdacSum >= maxSum && tdacSum >= avgSum
		details = append(details, fmt.Sprintf("means: TD-AC %.2f vs Max %.2f / Avg %.2f",
			tdacSum/3, maxSum/3, avgSum/3))
		rep.add("partition-recovery", ok, details)
	}
	// Semi-synthetic claims.
	{
		noDetOK := true
		var details, detDetails []string
		var loMean, hiMean float64
		combos := 0
		for _, attrs := range []int{62, 124} {
			for _, alg := range []string{"Accu", "TruthFinder"} {
				lo, err := r.Measure(fmt.Sprintf("exam%d-r25", attrs), experiments.Std(alg))
				if err != nil {
					return nil, err
				}
				hi, err := r.Measure(fmt.Sprintf("exam%d-r1000", attrs), experiments.Std(alg))
				if err != nil {
					return nil, err
				}
				loMean += lo.Report.Accuracy
				hiMean += hi.Report.Accuracy
				combos++
				details = append(details, fmt.Sprintf("%d attrs %s: r25 %.3f → r1000 %.3f",
					attrs, alg, lo.Report.Accuracy, hi.Report.Accuracy))
			}
			for _, rng := range []int{25, 100} {
				ds := fmt.Sprintf("exam%d-r%d", attrs, rng)
				base, err := r.Measure(ds, experiments.Std("Accu"))
				if err != nil {
					return nil, err
				}
				wrapped, err := r.Measure(ds, experiments.TDACSpec("Accu"))
				if err != nil {
					return nil, err
				}
				delta := wrapped.Report.Accuracy - base.Report.Accuracy
				if delta < -0.03 {
					noDetOK = false
				}
				detDetails = append(detDetails, fmt.Sprintf("%s: TD-AC delta %+.3f", ds, delta))
			}
		}
		loMean /= float64(combos)
		hiMean /= float64(combos)
		details = append(details, fmt.Sprintf("means: r25 %.3f → r1000 %.3f", loMean, hiMean))
		rep.add("range-trend", hiMean >= loMean-0.002, details)
		rep.add("no-deterioration", noDetOK, detDetails)
	}
	// Claim: dcr-correlation.
	{
		delta := func(label string) (float64, error) {
			id := realIDs[label]
			base, err := r.Measure(id, experiments.Std("Accu"))
			if err != nil {
				return 0, err
			}
			wrapped, err := r.Measure(id, experiments.TDACSpec("Accu"))
			if err != nil {
				return 0, err
			}
			return wrapped.Report.Accuracy - base.Report.Accuracy, nil
		}
		var hiSum, loSum, hiMax float64
		for _, label := range paper.HighDCRDatasets {
			d, err := delta(label)
			if err != nil {
				return nil, err
			}
			hiSum += d
			if d > hiMax {
				hiMax = d
			}
		}
		for _, label := range paper.LowDCRDatasets {
			d, err := delta(label)
			if err != nil {
				return nil, err
			}
			loSum += d
		}
		hiMean := hiSum / float64(len(paper.HighDCRDatasets))
		loMean := loSum / float64(len(paper.LowDCRDatasets))
		ok := hiMean >= loMean && hiMax > 0
		rep.add("dcr-correlation", ok, []string{fmt.Sprintf(
			"mean TD-AC delta: high-DCR %+.3f vs low-DCR %+.3f (best high-DCR %+.3f)",
			hiMean, loMean, hiMax)})
	}

	// Comparison tables: paper vs measured accuracy.
	synthTable := &experiments.Table{
		ID:     "cmp-synth",
		Title:  "Paper vs measured accuracy on DS1–DS3 (TD-AC over Accu)",
		Header: []string{"Dataset", "Paper Accu", "Ours Accu", "Paper TD-AC", "Ours TD-AC"},
	}
	for _, ds := range synthIDs {
		row := synth[ds]
		paperAccu := paper.Table4[ds]["Accu"].Accuracy
		paperTDAC := paper.Table4[ds]["TD-AC (F=Accu)"].Accuracy
		paperTDACCell := fmt.Sprintf("%.3f", paperTDAC)
		if paperTDAC == 0 {
			paperTDACCell = "n/a" // Table 4b omits the TD-AC row in print
		}
		synthTable.AddRow(ds,
			fmt.Sprintf("%.3f", paperAccu),
			fmt.Sprintf("%.3f", row.accu.Report.Accuracy),
			paperTDACCell,
			fmt.Sprintf("%.3f", row.tdac.Report.Accuracy))
	}
	rep.Comparisons = append(rep.Comparisons, synthTable)

	realTable := &experiments.Table{
		ID:     "cmp-real",
		Title:  "Paper vs measured accuracy on real datasets (Accu and TD-AC)",
		Header: []string{"Dataset", "Paper Accu", "Ours Accu", "Paper TD-AC", "Ours TD-AC"},
	}
	labels := make([]string, 0, len(realIDs))
	for label := range realIDs {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		base, err := r.Measure(realIDs[label], experiments.Std("Accu"))
		if err != nil {
			return nil, err
		}
		wrapped, err := r.Measure(realIDs[label], experiments.TDACSpec("Accu"))
		if err != nil {
			return nil, err
		}
		realTable.AddRow(label,
			fmt.Sprintf("%.3f", paper.Table9[label]["Accu"]),
			fmt.Sprintf("%.3f", base.Report.Accuracy),
			fmt.Sprintf("%.3f", paper.Table9[label]["TD-AC (F=Accu)"]),
			fmt.Sprintf("%.3f", wrapped.Report.Accuracy))
	}
	rep.Comparisons = append(rep.Comparisons, realTable)
	return rep, nil
}

// add records a check outcome by claim id.
func (r *Report) add(id string, ok bool, details []string) {
	for _, c := range paper.Claims() {
		if c.ID == id {
			r.Checks = append(r.Checks, Check{Claim: c, Passed: ok, Detail: strings.Join(details, "; ")})
			return
		}
	}
	panic("report: unknown claim id " + id)
}
