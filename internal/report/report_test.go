package report

import (
	"bytes"
	"strings"
	"testing"

	"tdac/internal/experiments"
	"tdac/internal/paper"
)

func TestGenerateSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation in -short mode")
	}
	r := experiments.NewRunner(experiments.Options{})
	rep, err := Generate(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) != len(paper.Claims()) {
		t.Errorf("%d checks, want %d (one per claim)", len(rep.Checks), len(paper.Claims()))
	}
	for _, c := range rep.Checks {
		if !c.Passed {
			t.Errorf("shape check %s failed: %s", c.Claim.ID, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("check %s has no measurement detail", c.Claim.ID)
		}
	}
	if !rep.Passed() {
		t.Error("Passed() = false with all checks green")
	}
	if len(rep.Comparisons) != 2 {
		t.Errorf("%d comparison tables, want 2", len(rep.Comparisons))
	}

	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[PASS]", "cmp-synth", "cmp-real", "Paper Accu"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestPassedDetectsFailures(t *testing.T) {
	rep := &Report{Checks: []Check{{Passed: true}, {Passed: false}}}
	if rep.Passed() {
		t.Error("Passed() ignored a failing check")
	}
}

func TestAddUnknownClaimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("add accepted an unknown claim id")
		}
	}()
	(&Report{}).add("not-a-claim", true, nil)
}
