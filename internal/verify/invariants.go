package verify

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tdac"
	"tdac/internal/algorithms"
	"tdac/internal/clustering"
	"tdac/internal/core"
	"tdac/internal/genpartition"
	"tdac/internal/partition"
	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

// Library-level invariants: the clustering kernels, the k-sweep and the
// TD-AC pipeline itself. Service-level invariants live in serverinv.go.

func init() {
	register(
		Invariant{
			Name:        "distmatrix-packed-vs-naive",
			Class:       Differential,
			Description: "the packed popcount distance matrix equals the O(n²) float reference, dense and masked, bit for bit",
			Quick:       true,
			Check:       checkDistMatrix,
		},
		Invariant{
			Name:        "silhouette-vs-equations",
			Class:       Differential,
			Description: "production silhouette values equal Equations 5–7 evaluated from the definitions",
			Quick:       true,
			Check:       checkSilhouette,
		},
		Invariant{
			Name:        "kmeans-vs-naive-lloyd",
			Class:       Differential,
			Description: "accelerated k-means (packed seeding, bounded assignment) matches an unaccelerated Lloyd reference exactly",
			Quick:       true,
			Check:       checkKMeans,
		},
		Invariant{
			Name:        "ksweep-vs-sequential",
			Class:       Differential,
			Description: "the parallel shared-matrix k-sweep selects the same partition, silhouette and per-k scores as a sequential naive sweep",
			Quick:       true,
			Check:       checkKSweep,
		},
		Invariant{
			Name:        "relabel-equivariance",
			Class:       Metamorphic,
			Description: "renaming sources and objects permutes the truth vectors exactly, flips reference truth only on razor ties and never changes a k-means++ seeding draw; renaming attributes permutes the truth-vector rows",
			Quick:       true,
			Check:       checkRelabel,
		},
		Invariant{
			Name:        "workers-bit-identical",
			Class:       Metamorphic,
			Description: "Discover returns bit-identical results for every WithWorkers value and with WithParallel",
			Quick:       true,
			Check:       checkWorkers,
		},
		Invariant{
			Name:        "partition-cover",
			Class:       Metamorphic,
			Description: "merging per-group results covers every claimed cell exactly once, for arbitrary partitions and for the one TD-AC selects",
			Quick:       true,
			Check:       checkPartitionCover,
		},
		Invariant{
			Name:        "genpartition-optimum",
			Class:       Oracle,
			Description: "TD-AC's chosen partition scores within ε of the brute-force AccuGenPartition optimum on |A| = 5 (Bell(5) = 52 candidates)",
			Quick:       false,
			Check:       checkGenPartitionOptimum,
		},
		Invariant{
			Name:        "planted-recovery",
			Class:       Oracle,
			Description: "TD-AC recovers the generator's planted attribute partition on the paper's DS2 configuration",
			Quick:       false,
			Check:       checkPlantedRecovery,
		},
		Invariant{
			Name:        "search-vs-exhaustive",
			Class:       Oracle,
			Description: "the sublinear k-search strategies (golden, mdl) select a silhouette at least the exhaustive sweep's optimum while probing strictly fewer cluster counts, deterministically",
			Quick:       true,
			Check:       checkSearchVsExhaustive,
		},
	)
}

// rngFor derives a per-invariant rng so invariants stay independent of
// registration order and of each other.
func rngFor(cfg Config, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*1_000_003 + salt))
}

func checkDistMatrix(cfg Config) error {
	rng := rngFor(cfg, 1)
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 6 + rng.Intn(10)
		dim := 16 + rng.Intn(100) // crosses the 64-bit word boundary
		vecs := randomBinaryVectors(rng, n, dim)
		packed, ok := clustering.PackBinary(vecs)
		if !ok {
			return fmt.Errorf("trial %d: PackBinary rejected binary vectors", trial)
		}
		m := clustering.NewDistMatrixPacked(packed)
		ref := naiveDistMatrix(vecs, clustering.Hamming{})
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got, want := m.At(i, j), ref[i][j]; got != want {
					return fmt.Errorf("trial %d: dense d(%d,%d): packed %v, naive %v", trial, i, j, got, want)
				}
			}
		}

		mvecs := randomMaskedVectors(rng, n, dim, core.Missing)
		mpacked, ok := clustering.PackMasked(mvecs, core.Missing)
		if !ok {
			return fmt.Errorf("trial %d: PackMasked rejected masked vectors", trial)
		}
		mm := clustering.NewDistMatrixPacked(mpacked)
		mref := naiveDistMatrix(mvecs, clustering.MaskedHamming{Mask: core.Missing})
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got, want := mm.At(i, j), mref[i][j]; got != want {
					return fmt.Errorf("trial %d: masked d(%d,%d): packed %v, naive %v", trial, i, j, got, want)
				}
			}
		}
	}
	return nil
}

func checkSilhouette(cfg Config) error {
	rng := rngFor(cfg, 2)
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 6 + rng.Intn(12)
		dim := 10 + rng.Intn(50)
		k := 2 + rng.Intn(3)
		vecs := randomBinaryVectors(rng, n, dim)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		ref := naiveSilhouette(naiveDistMatrix(vecs, clustering.Hamming{}), assign, k)

		if got := clustering.Silhouette(vecs, assign, k, clustering.Hamming{}); got != ref {
			return fmt.Errorf("trial %d: Silhouette %v, Equations 5–7 give %v", trial, got, ref)
		}
		packed, _ := clustering.PackBinary(vecs)
		m := clustering.NewDistMatrixPacked(packed)
		if got := clustering.SilhouetteFromDistMatrix(m, assign, k); got != ref {
			return fmt.Errorf("trial %d: SilhouetteFromDistMatrix %v, Equations 5–7 give %v", trial, got, ref)
		}
	}
	return nil
}

func checkKMeans(cfg Config) error {
	rng := rngFor(cfg, 3)
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 8 + rng.Intn(10)
		dim := 16 + rng.Intn(48)
		k := 2 + rng.Intn(3)
		seed := 1 + rng.Int63n(1_000)

		// Binary vectors under Hamming — TD-AC's configuration — with and
		// without the packed seeding matrix.
		vecs := randomBinaryVectors(rng, n, dim)
		ref := naiveKMeans{seed: seed, dist: clustering.Hamming{}}.cluster(vecs, k)

		plain := clustering.KMeans{Seed: seed, Distance: clustering.Hamming{}}
		if err := compareClustering("hamming", &plain, vecs, k, ref); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		packed, _ := clustering.PackBinary(vecs)
		seeded := clustering.KMeans{Seed: seed, Distance: clustering.Hamming{}, SeedSqDists: clustering.NewDistMatrixPacked(packed)}
		if err := compareClustering("hamming+matrix", &seeded, vecs, k, ref); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}

		// Fractional vectors under the default Euclidean distance.
		frac := make([][]float64, n)
		for i := range frac {
			frac[i] = make([]float64, dim)
			for j := range frac[i] {
				frac[i][j] = rng.Float64()
			}
		}
		fref := naiveKMeans{seed: seed}.cluster(frac, k)
		eu := clustering.KMeans{Seed: seed}
		if err := compareClustering("euclidean", &eu, frac, k, fref); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
	}
	return nil
}

// compareClustering runs the production KMeans and diffs it against a
// naive reference run, field by field.
func compareClustering(label string, km *clustering.KMeans, points [][]float64, k int, ref *naiveClustering) error {
	c, err := km.Cluster(points, k)
	if err != nil {
		return fmt.Errorf("%s: production k-means: %w", label, err)
	}
	for i := range c.Assign {
		if c.Assign[i] != ref.assign[i] {
			return fmt.Errorf("%s: point %d assigned to %d, naive Lloyd says %d", label, i, c.Assign[i], ref.assign[i])
		}
	}
	if c.Inertia != ref.inertia {
		return fmt.Errorf("%s: inertia %v, naive %v", label, c.Inertia, ref.inertia)
	}
	if c.MetricInertia != ref.metricInertia {
		return fmt.Errorf("%s: metric inertia %v, naive %v", label, c.MetricInertia, ref.metricInertia)
	}
	if c.Iterations != ref.iterations {
		return fmt.Errorf("%s: %d iterations, naive %d", label, c.Iterations, ref.iterations)
	}
	return nil
}

func checkKSweep(cfg Config) error {
	rng := rngFor(cfg, 4)
	for trial := 0; trial < cfg.Trials; trial++ {
		nAttrs := 5 + rng.Intn(5)
		dim := 20 + rng.Intn(40)
		seed := 1 + rng.Int63n(1_000)
		vecs := randomBinaryVectors(rng, nAttrs, dim)

		t := &core.TDAC{
			Base:    algorithms.NewMajorityVote(),
			KMeans:  clustering.KMeans{Seed: seed},
			Workers: 4,
		}
		tv := &core.TruthVectors{Vectors: vecs, Dim: dim}
		part, sil, explored, err := t.SelectPartition(context.Background(), tv, nAttrs)
		if err != nil {
			return fmt.Errorf("trial %d: SelectPartition: %w", trial, err)
		}
		refPart, refSil, refSils := naiveKSweep(vecs, 0, 0, clustering.Hamming{}, seed)

		if len(explored) != len(refSils) {
			return fmt.Errorf("trial %d: explored %d values of k, naive sweep %d", trial, len(explored), len(refSils))
		}
		for i, ks := range explored {
			if ks.Silhouette != refSils[i] {
				return fmt.Errorf("trial %d: k=%d silhouette %v, naive %v", trial, ks.K, ks.Silhouette, refSils[i])
			}
		}
		if sil != refSil {
			return fmt.Errorf("trial %d: best silhouette %v, naive %v", trial, sil, refSil)
		}
		if !part.Equal(refPart) {
			return fmt.Errorf("trial %d: partition %v, naive sweep selected %v", trial, part, refPart)
		}
	}
	return nil
}

// identityPerm returns [0, 1, …, n-1].
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// permuteDataset relabels d: perm[old] = new for each id space. Claim
// order — the order every deterministic algorithm iterates in — is
// preserved, so only the identifiers change.
func permuteDataset(d *truthdata.Dataset, sPerm, oPerm, aPerm []int) (*truthdata.Dataset, error) {
	out := &truthdata.Dataset{
		Name:    d.Name,
		Sources: make([]string, len(d.Sources)),
		Objects: make([]string, len(d.Objects)),
		Attrs:   make([]string, len(d.Attrs)),
		Claims:  make([]truthdata.Claim, len(d.Claims)),
	}
	for old, name := range d.Sources {
		out.Sources[sPerm[old]] = name
	}
	for old, name := range d.Objects {
		out.Objects[oPerm[old]] = name
	}
	for old, name := range d.Attrs {
		out.Attrs[aPerm[old]] = name
	}
	for i, c := range d.Claims {
		out.Claims[i] = truthdata.Claim{
			Source: truthdata.SourceID(sPerm[c.Source]),
			Object: truthdata.ObjectID(oPerm[c.Object]),
			Attr:   truthdata.AttrID(aPerm[c.Attr]),
			Value:  c.Value,
		}
	}
	if d.Truth != nil {
		out.Truth = make(map[truthdata.Cell]string, len(d.Truth))
		for cell, v := range d.Truth {
			out.Truth[truthdata.Cell{
				Object: truthdata.ObjectID(oPerm[cell.Object]),
				Attr:   truthdata.AttrID(aPerm[cell.Attr]),
			}] = v
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("permuted dataset invalid: %w", err)
	}
	return out, nil
}

// relabelConfTol bounds how far apart two confidences may be for a
// truth cell that flipped under relabeling: only razor ties — scores
// separated by float noise, not by evidence — are allowed to flip.
// Fuzzing found the need for it (seed -91): iterative algorithms and
// Lloyd's assignment sum float terms in coordinate order, so relabeling
// reorders sums and can swap winners that agree to the last ulp.
const relabelConfTol = 1e-6

// nearlyTied reports whether two scores differ only at razor-tie scale.
func nearlyTied(a, b float64) bool {
	return math.Abs(a-b) <= relabelConfTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func checkRelabel(cfg Config) error {
	rng := rngFor(cfg, 5)
	for trial := 0; trial < cfg.Trials; trial++ {
		d := randomDataset(rng, 4+rng.Intn(3), 6+rng.Intn(5), 4+rng.Intn(3), 3, 0.9)
		seed := 1 + rng.Int63n(1_000)

		// Source and object relabeling permutes the truth-vector
		// coordinates (column o·|S|+s moves to oPerm[o]·|S|+sPerm[s]).
		sPerm := rng.Perm(d.NumSources())
		oPerm := rng.Perm(d.NumObjects())
		pd, err := permuteDataset(d, sPerm, oPerm, identityPerm(d.NumAttrs()))
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}

		// Equation 1 is exactly equivariant: under a shared reference
		// truth, every truth-vector coordinate moves with its
		// (object, source) pair, bit for bit, in both encodings. Hamming
		// and masked-Hamming distances only see coordinate multisets, so
		// distance invariance follows from this exactly.
		ref, err := algorithms.NewAccu().Discover(d)
		if err != nil {
			return fmt.Errorf("trial %d: reference run: %w", trial, err)
		}
		mappedRef := make(map[truthdata.Cell]string, len(ref.Truth))
		for cell, v := range ref.Truth {
			mappedRef[truthdata.Cell{Object: truthdata.ObjectID(oPerm[cell.Object]), Attr: cell.Attr}] = v
		}
		nS := d.NumSources()
		for _, masked := range []bool{false, true} {
			tv1 := core.BuildTruthVectors(d, ref.Truth, masked)
			tv2 := core.BuildTruthVectors(pd, mappedRef, masked)
			for a := range tv1.Vectors {
				for o := 0; o < d.NumObjects(); o++ {
					for s := 0; s < nS; s++ {
						if tv1.Vectors[a][o*nS+s] != tv2.Vectors[a][oPerm[o]*nS+sPerm[s]] {
							return fmt.Errorf("trial %d: truth vector of %s (masked=%v) not equivariant at object %d source %d",
								trial, d.AttrName(truthdata.AttrID(a)), masked, o, s)
						}
					}
				}
			}
		}

		// End to end, bitwise invariance would overclaim — fuzzing
		// proved it twice. Seed -91: two restarts whose inertias agree
		// to the last ulp swap winners when coordinate sums reorder.
		// Seed 1099511627762: an exact distance tie inside one Lloyd
		// iteration resolves differently under permuted summation and
		// the trajectory converges to a different local optimum
		// (inertia 17 vs 18) — an ulp amplified into a discrete change,
		// so no end-state tolerance can hold. What is provably exact
		// and therefore asserted: the reference run may flip only
		// razor-tied cells, its trust moves by at most float noise, and
		// every k-means++ seeding draw is identical, because the D²
		// landscape on binary vectors is integer-exact.
		pref, err := algorithms.NewAccu().Discover(pd)
		if err != nil {
			return fmt.Errorf("trial %d: relabeled reference run: %w", trial, err)
		}
		for cell, v := range ref.Truth {
			mapped := truthdata.Cell{Object: truthdata.ObjectID(oPerm[cell.Object]), Attr: cell.Attr}
			got, ok := pref.Truth[mapped]
			if !ok {
				return fmt.Errorf("trial %d: reference truth lost cell %v under relabeling", trial, cell)
			}
			if got != v && !nearlyTied(ref.Confidence[cell], pref.Confidence[mapped]) {
				return fmt.Errorf("trial %d: reference truth for %s/%s flipped %q→%q with confidences %v vs %v — not a tie",
					trial, d.ObjectName(cell.Object), d.AttrName(cell.Attr), v, got,
					ref.Confidence[cell], pref.Confidence[mapped])
			}
		}
		for s, t := range ref.Trust {
			if got := pref.Trust[sPerm[s]]; math.Abs(got-t) > 1e-9 {
				return fmt.Errorf("trial %d: reference trust of %s changed under relabeling: %v vs %v",
					trial, d.SourceName(truthdata.SourceID(s)), got, t)
			}
		}

		tv1 := core.BuildTruthVectors(d, ref.Truth, false)
		tv2 := core.BuildTruthVectors(pd, mappedRef, false)
		nA := d.NumAttrs()
		for k := 2; k <= nA-1; k++ {
			for r := 0; r < 4; r++ {
				rng1 := rand.New(rand.NewSource(seed + int64(r)*7919))
				rng2 := rand.New(rand.NewSource(seed + int64(r)*7919))
				_, picks1 := naiveSeedPlusPlus(tv1.Vectors, k, rng1)
				_, picks2 := naiveSeedPlusPlus(tv2.Vectors, k, rng2)
				for i := range picks1 {
					if picks1[i] != picks2[i] {
						return fmt.Errorf("trial %d: k=%d restart %d: seeding draw %d picked attribute %d relabeled, %d original",
							trial, k, r, i, picks2[i], picks1[i])
					}
				}
			}
		}

		// Attribute relabeling reorders the k-means point set, which
		// legitimately changes which points the seeding rng draws — so
		// the end-to-end claim stops at Equation 1: BuildTruthVectors
		// must be equivariant, rows moving with their attributes.
		aPerm := rng.Perm(d.NumAttrs())
		ad, err := permuteDataset(d, identityPerm(d.NumSources()), identityPerm(d.NumObjects()), aPerm)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		mvRef, err := algorithms.NewMajorityVote().Discover(d)
		if err != nil {
			return fmt.Errorf("trial %d: reference run: %w", trial, err)
		}
		aref := make(map[truthdata.Cell]string, len(mvRef.Truth))
		for cell, v := range mvRef.Truth {
			aref[truthdata.Cell{Object: cell.Object, Attr: truthdata.AttrID(aPerm[cell.Attr])}] = v
		}
		for _, masked := range []bool{false, true} {
			tv := core.BuildTruthVectors(d, mvRef.Truth, masked)
			atv := core.BuildTruthVectors(ad, aref, masked)
			for a := 0; a < d.NumAttrs(); a++ {
				want, got := tv.Vectors[a], atv.Vectors[aPerm[a]]
				for j := range want {
					if want[j] != got[j] {
						return fmt.Errorf("trial %d: truth vector of %s (masked=%v) changed under attribute relabeling at coordinate %d",
							trial, d.AttrName(truthdata.AttrID(a)), masked, j)
					}
				}
			}
		}
	}
	return nil
}

func checkWorkers(cfg Config) error {
	rng := rngFor(cfg, 6)
	for trial := 0; trial < cfg.Trials; trial++ {
		d := randomDataset(rng, 4+rng.Intn(3), 7+rng.Intn(5), 5+rng.Intn(3), 3, 0.9)
		seed := 1 + rng.Int63n(1_000)
		base, err := tdac.Discover(d, tdac.WithSeed(seed), tdac.WithWorkers(1))
		if err != nil {
			return fmt.Errorf("trial %d: sequential discover: %w", trial, err)
		}
		variants := []struct {
			label string
			opts  []tdac.Option
		}{
			{"workers=2", []tdac.Option{tdac.WithSeed(seed), tdac.WithWorkers(2)}},
			{"workers=3", []tdac.Option{tdac.WithSeed(seed), tdac.WithWorkers(3)}},
			{"workers=8", []tdac.Option{tdac.WithSeed(seed), tdac.WithWorkers(8)}},
			{"workers=4+parallel", []tdac.Option{tdac.WithSeed(seed), tdac.WithWorkers(4), tdac.WithParallel()}},
		}
		for _, v := range variants {
			r, err := tdac.Discover(d, v.opts...)
			if err != nil {
				return fmt.Errorf("trial %d: %s: %w", trial, v.label, err)
			}
			if err := compareResults(base, r); err != nil {
				return fmt.Errorf("trial %d: %s diverges from workers=1: %w", trial, v.label, err)
			}
		}
	}
	return nil
}

// compareResults demands bitwise equality of two Discover results.
func compareResults(a, b *tdac.Result) error {
	if !a.Partition.Equal(b.Partition) {
		return fmt.Errorf("partition %v vs %v", a.Partition, b.Partition)
	}
	if a.Silhouette != b.Silhouette {
		return fmt.Errorf("silhouette %v vs %v", a.Silhouette, b.Silhouette)
	}
	if len(a.Truth) != len(b.Truth) {
		return fmt.Errorf("truth sizes %d vs %d", len(a.Truth), len(b.Truth))
	}
	for cell, v := range a.Truth {
		if got, ok := b.Truth[cell]; !ok || got != v {
			return fmt.Errorf("truth at %v: %q vs %q", cell, v, got)
		}
	}
	for cell, c := range a.Confidence {
		if got, ok := b.Confidence[cell]; !ok || got != c {
			return fmt.Errorf("confidence at %v: %v vs %v", cell, c, got)
		}
	}
	if len(a.Trust) != len(b.Trust) {
		return fmt.Errorf("trust lengths %d vs %d", len(a.Trust), len(b.Trust))
	}
	for s := range a.Trust {
		if a.Trust[s] != b.Trust[s] {
			return fmt.Errorf("trust of source %d: %v vs %v", s, a.Trust[s], b.Trust[s])
		}
	}
	return nil
}

func checkPartitionCover(cfg Config) error {
	rng := rngFor(cfg, 7)
	for trial := 0; trial < cfg.Trials; trial++ {
		d := randomDataset(rng, 4+rng.Intn(3), 6+rng.Intn(5), 4+rng.Intn(4), 3, 0.7)
		cells := d.Cells()

		// Arbitrary partitions, including single-group and singletons.
		nA := d.NumAttrs()
		candidates := []partition.Partition{partition.Whole(nA), partition.Singletons(nA)}
		for extra := 0; extra < 2; extra++ {
			k := 2 + rng.Intn(nA-1)
			assign := make([]int, nA)
			for i := range assign {
				assign[i] = rng.Intn(k)
			}
			candidates = append(candidates, partition.FromAssign(assign, k))
		}
		for _, p := range candidates {
			if got := p.Size(); got != nA {
				return fmt.Errorf("trial %d: partition %v covers %d attributes, dataset has %d", trial, p, got, nA)
			}
			res, err := core.RunOnPartition(algorithms.NewMajorityVote(), d, p)
			if err != nil {
				return fmt.Errorf("trial %d: partition %v: %w", trial, p, err)
			}
			if err := coversExactly(res.Truth, cells); err != nil {
				return fmt.Errorf("trial %d: partition %v: %w", trial, p, err)
			}
		}

		// The partition TD-AC itself selects.
		r, err := tdac.Discover(d, tdac.WithSeed(1))
		if err != nil {
			return fmt.Errorf("trial %d: discover: %w", trial, err)
		}
		if got := r.Partition.Size(); got != nA {
			return fmt.Errorf("trial %d: selected partition covers %d attributes, dataset has %d", trial, got, nA)
		}
		if err := coversExactly(r.Truth, cells); err != nil {
			return fmt.Errorf("trial %d: discover: %w", trial, err)
		}
	}
	return nil
}

// coversExactly checks that truth holds a prediction for every claimed
// cell and nothing else. A map can hold a cell at most once, so "exactly
// once" reduces to set equality.
func coversExactly(truth map[truthdata.Cell]string, cells []truthdata.Cell) error {
	if len(truth) != len(cells) {
		return fmt.Errorf("merged truth has %d cells, dataset claims %d", len(truth), len(cells))
	}
	for _, cell := range cells {
		if _, ok := truth[cell]; !ok {
			return fmt.Errorf("claimed cell %v missing from merged truth", cell)
		}
	}
	return nil
}

func checkGenPartitionOptimum(cfg Config) error {
	// ε for "TD-AC found a near-optimal partition": the heuristic is not
	// guaranteed to hit the enumerated optimum exactly, but on strongly
	// structured data it must land within a few hundredths of it.
	const eps = 0.05
	for _, seed := range []int64{7, 19} {
		scfg := synth.Config{
			Name:       "verify-oracle",
			Attrs:      5,
			Objects:    36,
			Sources:    8,
			GroupSizes: []int{2, 3},
			M1:         1, M2: 0, M3: 1,
			FalseValues:    10,
			DistractorProb: 0.3,
			Coverage:       1,
			Seed:           seed,
		}
		gen, err := synth.Generate(scfg)
		if err != nil {
			return fmt.Errorf("seed %d: generate: %w", seed, err)
		}
		d := gen.Dataset

		gp := genpartition.New(algorithms.NewAccu(), genpartition.Max)
		out, err := gp.Run(d)
		if err != nil {
			return fmt.Errorf("seed %d: brute force: %w", seed, err)
		}
		td := core.New(algorithms.NewAccu())
		res, err := td.Run(d)
		if err != nil {
			return fmt.Errorf("seed %d: tdac: %w", seed, err)
		}
		score, err := gp.ScorePartition(d, res.Partition)
		if err != nil {
			return fmt.Errorf("seed %d: scoring tdac partition: %w", seed, err)
		}
		if score > out.Score+1e-9 {
			return fmt.Errorf("seed %d: tdac partition %v scores %v, above the enumerated optimum %v — the enumeration missed a partition",
				seed, res.Partition, score, out.Score)
		}
		if out.Score-score > eps {
			return fmt.Errorf("seed %d: tdac partition %v scores %v, enumerated optimum %v scores %v — gap %v exceeds ε=%v",
				seed, res.Partition, score, out.Partition, out.Score, out.Score-score, eps)
		}
	}
	return nil
}

func checkSearchVsExhaustive(cfg Config) error {
	// The search probes are warm-started from dendrogram cuts, so at the
	// k the exhaustive sweep crowns, the search's Lloyd run converges to
	// a silhouette at least as good as the cold-seeded one — the search
	// optimum may therefore only match or beat the sweep's, never trail
	// it. Fewer probes is the whole point; equality would mean the
	// strategy degenerated into the sweep it replaces.
	for _, seed := range []int64{31, 47} {
		gen, err := synth.Generate(synth.Config{
			Name:       "verify-search",
			Attrs:      30,
			Objects:    40,
			Sources:    10,
			GroupSizes: []int{10, 10, 10},
			M1:         1, M2: 0, M3: 0.9,
			FalseValues:    30,
			DistractorProb: 0.3,
			Coverage:       1,
			Seed:           seed,
		})
		if err != nil {
			return fmt.Errorf("seed %d: generate: %w", seed, err)
		}
		full := core.New(algorithms.NewMajorityVote())
		ref, err := full.Run(gen.Dataset)
		if err != nil {
			return fmt.Errorf("seed %d: exhaustive: %w", seed, err)
		}
		for _, strategy := range []string{core.SearchGolden, core.SearchMDL} {
			td := core.New(algorithms.NewMajorityVote())
			td.Search = strategy
			out, err := td.Run(gen.Dataset)
			if err != nil {
				return fmt.Errorf("seed %d: %s: %w", seed, strategy, err)
			}
			if out.Silhouette < ref.Silhouette-1e-9 {
				return fmt.Errorf("seed %d: %s silhouette %v trails the exhaustive optimum %v",
					seed, strategy, out.Silhouette, ref.Silhouette)
			}
			if len(out.Explored) >= len(ref.Explored) {
				return fmt.Errorf("seed %d: %s probed %d of %d candidate ks — no savings over the sweep",
					seed, strategy, len(out.Explored), len(ref.Explored))
			}
			again, err := td.Run(gen.Dataset)
			if err != nil {
				return fmt.Errorf("seed %d: %s rerun: %w", seed, strategy, err)
			}
			if !again.Partition.Equal(out.Partition) || again.Silhouette != out.Silhouette {
				return fmt.Errorf("seed %d: %s is not deterministic across reruns", seed, strategy)
			}
		}
	}
	return nil
}

func checkPlantedRecovery(cfg Config) error {
	gen, err := plantedDataset(120)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	res, err := tdac.Discover(gen.Dataset, tdac.WithSeed(1))
	if err != nil {
		return fmt.Errorf("discover: %w", err)
	}
	if !res.Partition.Equal(gen.Planted) {
		return fmt.Errorf("selected %v, generator planted %v (Rand index %v)",
			res.Partition, gen.Planted, partition.RandIndex(res.Partition, gen.Planted))
	}
	if res.Silhouette <= 0 {
		return fmt.Errorf("planted partition recovered with non-positive silhouette %v", res.Silhouette)
	}
	return nil
}
