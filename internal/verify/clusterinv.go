package verify

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"tdac/internal/cluster"
	"tdac/internal/server"
	"tdac/internal/sse"
)

// Cluster invariants: sharding a registry across a consistent-hash ring
// and routing through tdac-router may never change an answer. Dataset-
// granular placement means a discover job reads nothing outside its own
// dataset's pinned snapshot, so a 3-shard cluster must reproduce a
// single node bit for bit — in discover results, listings and event
// streams — including after a primary is killed and its follower
// promoted (DESIGN.md §14).

func init() {
	register(
		Invariant{
			Name:        "cluster-vs-single-node",
			Class:       Metamorphic,
			Description: "a seeded 3-shard cluster behind the router returns the same discover results, dataset listing bytes and job event streams as one node holding every dataset",
			Quick:       false,
			Check:       checkClusterVsSingle,
		},
		Invariant{
			Name:        "cluster-failover-preserves-results",
			Class:       Metamorphic,
			Description: "after a primary is killed and its follower promoted, every dataset acked before the crash is served and a re-run discover matches the single node bit for bit",
			Quick:       false,
			Check:       checkClusterFailover,
		},
	)
}

// clusterDatasets builds the deterministic multi-dataset workload both
// cluster invariants seed: name → claims in ingestion order.
func clusterDatasets() (names []string, claims map[string][]server.ClaimInput, err error) {
	claims = make(map[string][]server.ClaimInput)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("verify-cluster-%d", i)
		gen, err := plantedDataset(8 + 2*i)
		if err != nil {
			return nil, nil, err
		}
		d := gen.Dataset
		cs := make([]server.ClaimInput, len(d.Claims))
		for j, c := range d.Claims {
			cs[j] = server.ClaimInput{
				Source:    d.SourceName(c.Source),
				Object:    d.ObjectName(c.Object),
				Attribute: d.AttrName(c.Attr),
				Value:     c.Value,
			}
		}
		names = append(names, name)
		claims[name] = cs
	}
	return names, claims, nil
}

// seedAndDiscover creates name, ingests its claims and runs one seeded
// discovery through base, returning the terminal job reply and its id.
func seedAndDiscover(client *http.Client, base, name string, claims []server.ClaimInput) (*jobReply, string, error) {
	if err := postJSON(client, base+"/v1/datasets", map[string]string{"name": name}, nil); err != nil {
		return nil, "", err
	}
	if err := postJSON(client, base+"/v1/datasets/"+name+"/claims", map[string]any{"claims": claims}, nil); err != nil {
		return nil, "", err
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := postJSON(client, base+"/v1/datasets/"+name+"/discover", map[string]any{"seed": 1}, &submitted); err != nil {
		return nil, "", err
	}
	jv, err := awaitJob(client, base, submitted.ID)
	if err != nil {
		return nil, "", err
	}
	if jv.State != string(server.JobDone) {
		return nil, "", fmt.Errorf("job on %s finished %s: %s", name, jv.State, jv.Error)
	}
	return jv, submitted.ID, nil
}

// canonicalResult fetches a terminal job's result and renders it in a
// canonical form with the wall-clock field zeroed — everything else,
// floats included, must match bit for bit.
func canonicalResult(client *http.Client, base, id string) (string, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Result map[string]any `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	if body.Result == nil {
		return "", fmt.Errorf("job %s carries no result", id)
	}
	delete(body.Result, "runtime_ms")
	out, err := json.Marshal(body.Result)
	return string(out), err
}

// scrubTimes strips the wall-clock and identity fields that legitimately
// differ between a cluster and a single node: job ids carry a shard
// prefix, timestamps and elapsed times are wall-clock. Everything else —
// states, phases, k values, silhouettes, truth, trust — must match.
func scrubTimes(v any, jobID string) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			switch k {
			case "enqueued_at", "started_at", "finished_at", "runtime_ms", "elapsed_ms":
				delete(x, k)
			default:
				x[k] = scrubTimes(val, jobID)
			}
		}
		return x
	case []any:
		for i := range x {
			x[i] = scrubTimes(x[i], jobID)
		}
		return x
	case string:
		if x == jobID {
			return "JOB"
		}
		return x
	default:
		return v
	}
}

// canonicalStream fetches a finished job's whole event stream and
// renders it canonically: frame ids and names verbatim, payloads with
// wall-clock fields scrubbed and the job id normalised.
func canonicalStream(client *http.Client, base, id string) (string, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events for %s: %s", id, resp.Status)
	}
	r := sse.NewReader(resp.Body)
	var b strings.Builder
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return b.String(), nil
		}
		if err != nil {
			return "", fmt.Errorf("reading stream of %s: %w", id, err)
		}
		var payload any
		if err := json.Unmarshal([]byte(ev.Data), &payload); err != nil {
			return "", fmt.Errorf("frame %s of %s: %w", ev.ID, id, err)
		}
		canon, err := json.Marshal(scrubTimes(payload, id))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s %s %s\n", ev.ID, ev.Name, canon)
	}
}

// threeShardCluster stands up n shard servers with the ownership gate
// wired to a shared ring, plus a router in front. The returned cleanup
// shuts everything down.
type shardNode struct {
	srv *server.Server
	ts  *httptest.Server
}

func startCluster(n int, mkConfig func(i int) server.Config) ([]*shardNode, *cluster.Ring, *cluster.Router, *httptest.Server, func(), error) {
	var nodes []*shardNode
	var ring *cluster.Ring // set below; the Owns closures capture it
	cleanup := func() {
		for _, nd := range nodes {
			nd.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = nd.srv.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		cfg := mkConfig(i)
		cfg.ShardID = id
		cfg.Owns = func(name string) (bool, string, string) {
			m := ring.Owner(name)
			return m.ID == id, m.ID, m.URL
		}
		srv, err := server.New(cfg)
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, nil, err
		}
		nodes = append(nodes, &shardNode{srv: srv, ts: httptest.NewServer(srv.Handler())})
	}
	members := make([]cluster.Member, n)
	for i, nd := range nodes {
		members[i] = cluster.Member{ID: fmt.Sprintf("s%d", i), URL: nd.ts.URL}
	}
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Ring:          ring,
		ProbeInterval: time.Hour, // invariants drive probing explicitly
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
	})
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	front := httptest.NewServer(rt.Handler())
	all := func() {
		front.Close()
		rt.Close()
		cleanup()
	}
	return nodes, ring, rt, front, all, nil
}

func checkClusterVsSingle(cfg Config) error {
	names, claims, err := clusterDatasets()
	if err != nil {
		return err
	}

	// The reference: one node holding every dataset.
	single, err := server.New(server.Config{Workers: 2, QueueSize: 16})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = single.Shutdown(ctx)
	}()
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	_, _, _, front, stop, err := startCluster(3, func(int) server.Config {
		return server.Config{Workers: 2, QueueSize: 16}
	})
	if err != nil {
		return err
	}
	defer stop()

	client := &http.Client{Timeout: 60 * time.Second}
	for _, name := range names {
		_, singleJob, err := seedAndDiscover(client, singleTS.URL, name, claims[name])
		if err != nil {
			return fmt.Errorf("single node, %s: %w", name, err)
		}
		_, clusterJob, err := seedAndDiscover(client, front.URL, name, claims[name])
		if err != nil {
			return fmt.Errorf("cluster, %s: %w", name, err)
		}

		singleRes, err := canonicalResult(client, singleTS.URL, singleJob)
		if err != nil {
			return err
		}
		clusterRes, err := canonicalResult(client, front.URL, clusterJob)
		if err != nil {
			return err
		}
		if singleRes != clusterRes {
			return fmt.Errorf("discover result for %s diverges:\nsingle:  %s\ncluster: %s", name, singleRes, clusterRes)
		}

		singleStream, err := canonicalStream(client, singleTS.URL, singleJob)
		if err != nil {
			return err
		}
		clusterStream, err := canonicalStream(client, front.URL, clusterJob)
		if err != nil {
			return err
		}
		if singleStream != clusterStream {
			return fmt.Errorf("event stream for %s diverges:\nsingle:\n%s\ncluster:\n%s", name, singleStream, clusterStream)
		}
	}

	// The fan-out listing must be byte-identical to the single node's.
	readBody := func(url string) (string, error) {
		resp, err := client.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return string(data), err
	}
	singleList, err := readBody(singleTS.URL + "/v1/datasets")
	if err != nil {
		return err
	}
	clusterList, err := readBody(front.URL + "/v1/datasets")
	if err != nil {
		return err
	}
	if singleList != clusterList {
		return fmt.Errorf("dataset listing diverges byte-wise:\nsingle:  %q\ncluster: %q", singleList, clusterList)
	}
	return nil
}

func checkClusterFailover(cfg Config) error {
	names, claims, err := clusterDatasets()
	if err != nil {
		return err
	}

	single, err := server.New(server.Config{Workers: 2, QueueSize: 16})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = single.Shutdown(ctx)
	}()
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	// Shard s0 is durable so its follower has a WAL to replicate; the
	// other shards stay in-memory.
	walDir, err := os.MkdirTemp("", "tdac-verify-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	nodes, ring, rt, front, stop, err := startCluster(3, func(i int) server.Config {
		c := server.Config{Workers: 2, QueueSize: 16}
		if i == 0 {
			c.DataDir = walDir
		}
		return c
	})
	if err != nil {
		return err
	}
	defer stop()

	follower, err := server.NewFollower(server.FollowerConfig{
		Primary: nodes[0].ts.URL,
		Dir:     walDir + "-mirror",
		Poll:    time.Hour, // synced explicitly below
		Serve:   server.Config{Workers: 2, QueueSize: 16, ShardID: "s0"},
	})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = follower.Close(ctx)
	}()
	defer os.RemoveAll(walDir + "-mirror")
	folTS := httptest.NewServer(follower.Handler())
	defer folTS.Close()
	// Rebuild the router over a ring that knows the follower. Placement
	// is unchanged (same member IDs); only the failover target is added.
	members := ring.Members()
	members[0].Follower = folTS.URL
	ring2, err := cluster.NewRing(members, 0)
	if err != nil {
		return err
	}
	rt.Close()
	front.Close()
	rt2, err := cluster.NewRouter(cluster.RouterConfig{
		Ring: ring2, ProbeInterval: time.Hour,
		ProbeTimeout: 200 * time.Millisecond, FailThreshold: 2,
	})
	if err != nil {
		return err
	}
	defer rt2.Close()
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()

	client := &http.Client{Timeout: 60 * time.Second}
	singleResults := make(map[string]string)
	var ownedByS0 []string
	for _, name := range names {
		if ring2.Owner(name).ID == "s0" {
			ownedByS0 = append(ownedByS0, name)
		}
		_, singleJob, err := seedAndDiscover(client, singleTS.URL, name, claims[name])
		if err != nil {
			return fmt.Errorf("single node, %s: %w", name, err)
		}
		if singleResults[name], err = canonicalResult(client, singleTS.URL, singleJob); err != nil {
			return err
		}
		if _, _, err := seedAndDiscover(client, front2.URL, name, claims[name]); err != nil {
			return fmt.Errorf("cluster, %s: %w", name, err)
		}
	}
	if len(ownedByS0) == 0 {
		// The hash layout is deterministic, so this would be a permanent
		// blind spot, not flakiness: fail loudly.
		return fmt.Errorf("no verify dataset landed on shard s0; grow clusterDatasets")
	}

	// Replicate everything acked so far, then kill s0's primary and force
	// the failover.
	if err := follower.SyncOnce(); err != nil {
		return fmt.Errorf("follower sync: %w", err)
	}
	nodes[0].ts.CloseClientConnections()
	nodes[0].ts.Close()
	rt2.ProbeNow()
	rt2.ProbeNow()
	resp, err := client.Post(front2.URL+"/v1/cluster/promote/s0", "application/json", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote s0: %s", resp.Status)
	}

	// Every dataset acked before the crash is still served through the
	// router, s0's from the promoted follower.
	for _, name := range names {
		resp, err := client.Get(front2.URL + "/v1/datasets/" + name)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("dataset %s lost after failover: %s", name, resp.Status)
		}
	}

	// A fresh discover on a failed-over dataset must still match the
	// single node bit for bit: the follower recovered a bit-identical
	// registry, so the pinned snapshot it computes on is the same.
	for _, name := range ownedByS0 {
		var submitted struct {
			ID string `json:"id"`
		}
		if err := postJSON(client, front2.URL+"/v1/datasets/"+name+"/discover", map[string]any{"seed": 1}, &submitted); err != nil {
			return fmt.Errorf("discover %s after failover: %w", name, err)
		}
		jv, err := awaitJob(client, front2.URL, submitted.ID)
		if err != nil {
			return err
		}
		if jv.State != string(server.JobDone) {
			return fmt.Errorf("post-failover job on %s finished %s: %s", name, jv.State, jv.Error)
		}
		got, err := canonicalResult(client, front2.URL, submitted.ID)
		if err != nil {
			return err
		}
		if got != singleResults[name] {
			return fmt.Errorf("post-failover result for %s diverges from the single node", name)
		}
	}
	return nil
}
