// Package verify is the differential + metamorphic verification harness
// of the repository: it cross-checks every accelerated production path
// (packed popcount distance kernels, the shared distance matrix, bounded
// k-means, the parallel k-sweep, the HTTP service and the WAL replay)
// against deliberately naive reference implementations and against the
// invariants the paper's Algorithm 1 and Equations 1–7 promise.
//
// Three invariant classes are distinguished:
//
//   - differential: a fast production path and a slow, obviously-correct
//     reference must produce the same answer on the same input;
//   - metamorphic: a transformed input (relabeled identifiers, a different
//     worker count, a replayed journal) must produce a correspondingly
//     transformed — or identical — answer;
//   - oracle: an external ground truth (the AccuGenPartition brute-force
//     enumeration of Ba et al., the generator's planted partition) bounds
//     or pins what the pipeline may return.
//
// Invariants are registered in Invariants and runnable through Run, the
// `go test` entry (verify_test.go), the fuzz target (fuzz_test.go) and
// the cmd/tdac-verify CLI. To add one, append an Invariant to the slice
// in invariants.go (or serverinv.go for service-level checks): a check is
// any func(Config) error that returns nil when the invariant holds and a
// descriptive error pinpointing the divergence when it does not.
package verify

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Class buckets invariants by the kind of guarantee they check.
type Class string

// The three invariant classes (see the package comment).
const (
	Differential Class = "differential"
	Metamorphic  Class = "metamorphic"
	Oracle       Class = "oracle"
)

// Config parameterises one harness run. The zero value is usable; Run
// fills defaults.
type Config struct {
	// Seed drives every random dataset and vector set the harness
	// generates. Same seed, same run.
	Seed int64
	// Trials is the number of random instances each randomised invariant
	// checks (default 2). Fixed-dataset invariants (the oracle checks)
	// ignore it.
	Trials int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trials <= 0 {
		c.Trials = 2
	}
	return c
}

// Invariant is one verifiable property of the system.
type Invariant struct {
	// Name identifies the invariant ("kmeans-vs-naive-lloyd", …).
	Name string
	// Class is the guarantee class.
	Class Class
	// Description says, in one sentence, what must hold.
	Description string
	// Quick marks invariants cheap enough for the fuzz target; the slow
	// ones (service round-trips, brute-force enumeration) are exercised
	// only by the test and CLI entries.
	Quick bool
	// Check returns nil when the invariant holds.
	Check func(Config) error
}

// Invariants returns every registered invariant, differential first,
// then metamorphic, then oracle, alphabetical within a class.
func Invariants() []Invariant {
	all := make([]Invariant, 0, len(registry))
	all = append(all, registry...)
	order := map[Class]int{Differential: 0, Metamorphic: 1, Oracle: 2}
	sort.SliceStable(all, func(i, j int) bool {
		if order[all[i].Class] != order[all[j].Class] {
			return order[all[i].Class] < order[all[j].Class]
		}
		return all[i].Name < all[j].Name
	})
	return all
}

// registry collects the invariants contributed by the package's files.
var registry []Invariant

// register adds invariants at init time.
func register(invs ...Invariant) { registry = append(registry, invs...) }

// Result is the outcome of checking one invariant.
type Result struct {
	Invariant Invariant
	// Err is nil when the invariant held.
	Err error
	// Duration is the wall time of the check.
	Duration time.Duration
}

// Run checks every invariant accepted by filter (nil = all) under cfg and
// returns one Result per invariant, in Invariants order.
func Run(cfg Config, filter func(Invariant) bool) []Result {
	cfg = cfg.withDefaults()
	var out []Result
	for _, inv := range Invariants() {
		if filter != nil && !filter(inv) {
			continue
		}
		start := time.Now()
		err := inv.Check(cfg)
		if err != nil {
			err = fmt.Errorf("%s: %w", inv.Name, err)
		}
		out = append(out, Result{Invariant: inv, Err: err, Duration: time.Since(start)})
	}
	return out
}

// Failed filters a result list down to the violated invariants.
func Failed(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Summarize renders one line per result plus a trailing verdict, the
// shared output of the test entry and the CLI.
func Summarize(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		status := "ok  "
		if r.Err != nil {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %-13s %-34s %8.0fms\n",
			status, r.Invariant.Class, r.Invariant.Name,
			float64(r.Duration)/float64(time.Millisecond))
		if r.Err != nil {
			fmt.Fprintf(&b, "      %v\n", r.Err)
		}
	}
	failed := Failed(results)
	if len(failed) == 0 {
		fmt.Fprintf(&b, "%d invariants verified\n", len(results))
	} else {
		fmt.Fprintf(&b, "%d of %d invariants VIOLATED\n", len(failed), len(results))
	}
	return b.String()
}
