package verify

// Algorithm-level invariants of the indexed rewrite: every registered
// base algorithm's DiscoverIndexed hot path is diffed against the
// retained naive implementation (algorithms.NewNaive) on random datasets
// — truth must match bit for bit, trust and confidence within one ulp
// (iterative hot paths may hoist loop-invariant subexpressions, which
// keeps sums in the same order but can round one fused step differently
// on some platforms; in practice the paths are bit-identical and the ulp
// bound is slack for portability).

import (
	"fmt"
	"math"
	"strings"

	"tdac/internal/algorithms"
)

func init() {
	for i, name := range algorithms.Names() {
		name := name
		salt := int64(100 + i)
		register(Invariant{
			Name:  "indexed-vs-naive-" + strings.ToLower(name),
			Class: Differential,
			Description: fmt.Sprintf(
				"%s's indexed hot path matches the retained naive implementation: truth bit for bit, trust and confidence within one ulp", name),
			Quick: true,
			Check: func(cfg Config) error { return checkIndexedVsNaive(cfg, name, salt) },
		})
	}
}

// ulpClose reports whether two floats are equal or adjacent in the
// float64 total order (one unit in the last place apart).
func ulpClose(a, b float64) bool {
	if a == b {
		return true
	}
	ba, bb := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	if ba < 0 {
		ba = math.MinInt64 - ba
	}
	if bb < 0 {
		bb = math.MinInt64 - bb
	}
	d := ba - bb
	return d == 1 || d == -1
}

func checkIndexedVsNaive(cfg Config, name string, salt int64) error {
	rng := rngFor(cfg, salt)
	fast, err := algorithms.New(name)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	slow, err := algorithms.NewNaive(name)
	if err != nil {
		return fmt.Errorf("naive registry: %w", err)
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		d := randomDataset(rng, 3+rng.Intn(5), 4+rng.Intn(7), 3+rng.Intn(4), 2+rng.Intn(3), 0.5+0.5*rng.Float64())
		got, err := fast.Discover(d)
		if err != nil {
			return fmt.Errorf("trial %d: indexed run: %w", trial, err)
		}
		want, err := slow.Discover(d)
		if err != nil {
			return fmt.Errorf("trial %d: naive run: %w", trial, err)
		}
		if got.Iterations != want.Iterations || got.Converged != want.Converged {
			return fmt.Errorf("trial %d: iterations/converged diverged: indexed %d/%v, naive %d/%v",
				trial, got.Iterations, got.Converged, want.Iterations, want.Converged)
		}
		if len(got.Truth) != len(want.Truth) {
			return fmt.Errorf("trial %d: truth sizes differ: indexed %d, naive %d", trial, len(got.Truth), len(want.Truth))
		}
		for cell, v := range want.Truth {
			if gv, ok := got.Truth[cell]; !ok || gv != v {
				return fmt.Errorf("trial %d: truth for %s/%s: indexed %q, naive %q",
					trial, d.ObjectName(cell.Object), d.AttrName(cell.Attr), gv, v)
			}
		}
		if len(got.Trust) != len(want.Trust) {
			return fmt.Errorf("trial %d: trust lengths differ: indexed %d, naive %d", trial, len(got.Trust), len(want.Trust))
		}
		for s := range want.Trust {
			if !ulpClose(got.Trust[s], want.Trust[s]) {
				return fmt.Errorf("trial %d: trust of source %d: indexed %v, naive %v", trial, s, got.Trust[s], want.Trust[s])
			}
		}
		if (got.Confidence == nil) != (want.Confidence == nil) {
			return fmt.Errorf("trial %d: confidence presence differs: indexed %v, naive %v",
				trial, got.Confidence != nil, want.Confidence != nil)
		}
		for cell, c := range want.Confidence {
			if !ulpClose(got.Confidence[cell], c) {
				return fmt.Errorf("trial %d: confidence for %s/%s: indexed %v, naive %v",
					trial, d.ObjectName(cell.Object), d.AttrName(cell.Attr), got.Confidence[cell], c)
			}
		}
	}
	return nil
}
