package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"tdac"
	"tdac/internal/server"
	"tdac/internal/truthdata"
)

// Service-level invariants: the HTTP surface and the WAL-backed store
// must be faithful transports around the library — serving a dataset and
// replaying a journal may never change an answer.

func init() {
	register(
		Invariant{
			Name:        "http-vs-direct",
			Class:       Metamorphic,
			Description: "a discovery job submitted over HTTP returns the same truth, trust, partition and silhouette as a direct library call on the same claims",
			Quick:       false,
			Check:       checkHTTPVsDirect,
		},
		Invariant{
			Name:        "wal-replay-idempotent",
			Class:       Metamorphic,
			Description: "recovering a server from its WAL reproduces the live registry state, and replaying the journal twice equals replaying it once",
			Quick:       false,
			Check:       checkWALReplay,
		},
	)
}

// postJSON posts a JSON body and decodes the JSON reply into out.
func postJSON(client *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, strings.TrimSpace(msg.String()))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// jobReply mirrors the wire shape of GET /v1/jobs/{id} (the service's
// jobView), as a client sees it.
type jobReply struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Silhouette *float64   `json:"silhouette"`
		Partition  [][]string `json:"partition"`
		Truth      []struct {
			Object    string `json:"object"`
			Attribute string `json:"attribute"`
			Value     string `json:"value"`
		} `json:"truth"`
		Trust []struct {
			Source string  `json:"source"`
			Trust  float64 `json:"trust"`
		} `json:"trust"`
	} `json:"result"`
}

// awaitJob polls the job endpoint until the job reaches a terminal state.
func awaitJob(client *http.Client, base, id string) (*jobReply, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var jv jobReply
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch jv.State {
		case string(server.JobDone), string(server.JobFailed), string(server.JobCancelled):
			return &jv, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after 30s", id, jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// canonicalPartitionNames renders a name-level partition in a canonical
// textual form for comparison across representations.
func canonicalPartitionNames(groups [][]string) string {
	out := make([]string, 0, len(groups))
	for _, g := range groups {
		names := append([]string(nil), g...)
		sort.Strings(names)
		out = append(out, strings.Join(names, ","))
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

func checkHTTPVsDirect(cfg Config) error {
	gen, err := plantedDataset(20)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	d := gen.Dataset

	s, err := server.New(server.Config{Workers: 2, QueueSize: 8})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Ship the claims over the wire in claim order, and feed the same
	// stream to a local Builder: the registry interns names in first-
	// appearance order, so both sides see the identical dataset.
	claims := make([]server.ClaimInput, len(d.Claims))
	b := tdac.NewBuilder("verify-http")
	for i, c := range d.Claims {
		claims[i] = server.ClaimInput{
			Source:    d.SourceName(c.Source),
			Object:    d.ObjectName(c.Object),
			Attribute: d.AttrName(c.Attr),
			Value:     c.Value,
		}
		b.Claim(claims[i].Source, claims[i].Object, claims[i].Attribute, c.Value)
	}
	local, err := b.Build()
	if err != nil {
		return fmt.Errorf("local build: %w", err)
	}

	if err := postJSON(client, ts.URL+"/v1/datasets", map[string]string{"name": "verify"}, nil); err != nil {
		return err
	}
	if err := postJSON(client, ts.URL+"/v1/datasets/verify/claims", map[string]any{"claims": claims}, nil); err != nil {
		return err
	}

	const seed = int64(1)
	direct, err := tdac.Discover(local, tdac.WithSeed(seed))
	if err != nil {
		return fmt.Errorf("direct discover: %w", err)
	}

	var submitted struct {
		ID string `json:"id"`
	}
	if err := postJSON(client, ts.URL+"/v1/datasets/verify/discover", map[string]any{"seed": seed}, &submitted); err != nil {
		return err
	}
	jv, err := awaitJob(client, ts.URL, submitted.ID)
	if err != nil {
		return err
	}
	if jv.State != string(server.JobDone) {
		return fmt.Errorf("job finished %s: %s", jv.State, jv.Error)
	}
	if jv.Result == nil {
		return fmt.Errorf("job done but carries no result")
	}

	// Truth: every wire cell must carry the direct prediction, 1:1.
	if got, want := len(jv.Result.Truth), len(direct.Truth); got != want {
		return fmt.Errorf("HTTP result has %d truth cells, direct call %d", got, want)
	}
	wantTruth := make(map[string]string, len(direct.Truth))
	for cell, v := range direct.Truth {
		wantTruth[local.ObjectName(cell.Object)+"\x1f"+local.AttrName(cell.Attr)] = v
	}
	for _, e := range jv.Result.Truth {
		want, ok := wantTruth[e.Object+"\x1f"+e.Attribute]
		if !ok {
			return fmt.Errorf("HTTP result predicts unclaimed cell %s/%s", e.Object, e.Attribute)
		}
		if e.Value != want {
			return fmt.Errorf("truth for %s/%s: HTTP %q, direct %q", e.Object, e.Attribute, e.Value, want)
		}
	}

	// Trust, silhouette and partition: bit-identical through the JSON
	// round-trip (encoding/json preserves float64 exactly).
	wantTrust := make(map[string]float64, len(direct.Trust))
	for s, t := range direct.Trust {
		wantTrust[local.SourceName(truthdata.SourceID(s))] = t
	}
	if got, want := len(jv.Result.Trust), len(wantTrust); got != want {
		return fmt.Errorf("HTTP result has %d trust entries, direct call %d", got, want)
	}
	for _, e := range jv.Result.Trust {
		if want, ok := wantTrust[e.Source]; !ok || e.Trust != want {
			return fmt.Errorf("trust of %s: HTTP %v, direct %v", e.Source, e.Trust, want)
		}
	}
	if jv.Result.Silhouette == nil {
		return fmt.Errorf("HTTP result carries no silhouette")
	}
	if *jv.Result.Silhouette != direct.Silhouette {
		return fmt.Errorf("silhouette: HTTP %v, direct %v", *jv.Result.Silhouette, direct.Silhouette)
	}
	directGroups := make([][]string, len(direct.Partition))
	for i, g := range direct.Partition {
		for _, a := range g {
			directGroups[i] = append(directGroups[i], local.AttrName(a))
		}
	}
	if got, want := canonicalPartitionNames(jv.Result.Partition), canonicalPartitionNames(directGroups); got != want {
		return fmt.Errorf("partition: HTTP %s, direct %s", got, want)
	}
	return nil
}

// registryState captures a registry's logical content: per dataset the
// version counter and the canonical JSON serialisation (encoding/json
// sorts map keys, so equal datasets serialise to equal bytes).
func registryState(r *server.Registry) (map[string]string, error) {
	out := make(map[string]string)
	for _, name := range r.Names() {
		snap, err := r.Get(name)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := truthdata.WriteJSON(&buf, snap.Data); err != nil {
			return nil, err
		}
		out[name] = fmt.Sprintf("v%d %s", snap.Version, buf.String())
	}
	return out, nil
}

func diffStates(labelA string, a map[string]string, labelB string, b map[string]string) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s has %d datasets, %s has %d", labelA, len(a), labelB, len(b))
	}
	for name, sa := range a {
		sb, ok := b[name]
		if !ok {
			return fmt.Errorf("dataset %q present in %s, missing from %s", name, labelA, labelB)
		}
		if sa != sb {
			return fmt.Errorf("dataset %q differs between %s and %s", name, labelA, labelB)
		}
	}
	return nil
}

func checkWALReplay(cfg Config) error {
	dir, err := os.MkdirTemp("", "tdac-verify-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	shutdown := func(s *server.Server) error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return s.Shutdown(ctx)
	}
	scfg := server.Config{DataDir: dir, Workers: 1, QueueSize: 8}

	// Populate a durable server over HTTP: two datasets, a multi-batch
	// append history, one completed discovery job.
	s1, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("initial server: %w", err)
	}
	ts := httptest.NewServer(s1.Handler())
	client := ts.Client()
	gen, err := plantedDataset(10)
	if err != nil {
		ts.Close()
		_ = shutdown(s1)
		return err
	}
	d := gen.Dataset
	claims := make([]server.ClaimInput, len(d.Claims))
	for i, c := range d.Claims {
		claims[i] = server.ClaimInput{
			Source:    d.SourceName(c.Source),
			Object:    d.ObjectName(c.Object),
			Attribute: d.AttrName(c.Attr),
			Value:     c.Value,
		}
	}
	half := len(claims) / 2
	populate := func() error {
		if err := postJSON(client, ts.URL+"/v1/datasets", map[string]string{"name": "alpha"}, nil); err != nil {
			return err
		}
		if err := postJSON(client, ts.URL+"/v1/datasets/alpha/claims", map[string]any{"claims": claims[:half]}, nil); err != nil {
			return err
		}
		if err := postJSON(client, ts.URL+"/v1/datasets/alpha/claims", map[string]any{"claims": claims[half:]}, nil); err != nil {
			return err
		}
		if err := postJSON(client, ts.URL+"/v1/datasets", map[string]string{"name": "beta"}, nil); err != nil {
			return err
		}
		if err := postJSON(client, ts.URL+"/v1/datasets/beta/claims", map[string]any{"claims": claims[:half]}, nil); err != nil {
			return err
		}
		var submitted struct {
			ID string `json:"id"`
		}
		if err := postJSON(client, ts.URL+"/v1/datasets/alpha/discover", map[string]any{"seed": 1}, &submitted); err != nil {
			return err
		}
		jv, err := awaitJob(client, ts.URL, submitted.ID)
		if err != nil {
			return err
		}
		if jv.State != string(server.JobDone) {
			return fmt.Errorf("job finished %s: %s", jv.State, jv.Error)
		}
		return nil
	}
	popErr := populate()
	var live map[string]string
	if popErr == nil {
		live, popErr = registryState(s1.Registry())
	}
	ts.Close()
	if err := shutdown(s1); err != nil {
		return fmt.Errorf("shutdown initial server: %w", err)
	}
	if popErr != nil {
		return popErr
	}

	// First replay: recovery must reproduce the live state.
	s2, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("first replay: %w", err)
	}
	rec2 := s2.Recovered()
	first, err := registryState(s2.Registry())
	if err2 := shutdown(s2); err == nil {
		err = err2
	}
	if err != nil {
		return fmt.Errorf("first replay: %w", err)
	}
	if err := diffStates("live registry", live, "first replay", first); err != nil {
		return err
	}
	if rec2 == nil {
		return fmt.Errorf("first replay recovered no state")
	}
	if len(rec2.Jobs) != 0 {
		return fmt.Errorf("first replay resurrected %d jobs, all were terminal", len(rec2.Jobs))
	}

	// Second replay: replaying the journal again must change nothing.
	s3, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("second replay: %w", err)
	}
	rec3 := s3.Recovered()
	second, err := registryState(s3.Registry())
	if err2 := shutdown(s3); err == nil {
		err = err2
	}
	if err != nil {
		return fmt.Errorf("second replay: %w", err)
	}
	if err := diffStates("first replay", first, "second replay", second); err != nil {
		return err
	}
	if rec3 == nil || rec3.NextJob != rec2.NextJob {
		return fmt.Errorf("job counter drifted across replays")
	}
	return nil
}
