package verify

import (
	"fmt"
	"math/rand"

	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

// Input generators of the harness. Every generator is a pure function of
// the rng handed to it, so a Config seed reproduces a whole run.

// randomBinaryVectors draws n 0/1 vectors of the given dimension — the
// shape of unmasked truth vectors (Equation 1).
func randomBinaryVectors(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			if rng.Intn(2) == 1 {
				v[j] = 1
			}
		}
		out[i] = v
	}
	return out
}

// randomMaskedVectors draws vectors over {0, 1, mask} — the shape of
// sparse-aware truth vectors, where mask encodes "no claim exists".
func randomMaskedVectors(rng *rand.Rand, n, dim int, mask float64) [][]float64 {
	out := randomBinaryVectors(rng, n, dim)
	for _, v := range out {
		for j := range v {
			if rng.Float64() < 0.3 {
				v[j] = mask
			}
		}
	}
	return out
}

// randomDataset builds a seeded random claim dataset: nS sources, nO
// objects, nA attributes, values drawn from a pool of nV candidates per
// cell, each (source, object, attribute) observation present with the
// given coverage probability. Ground truth is attached for every cell. At
// least one claim is guaranteed so the dataset is runnable.
func randomDataset(rng *rand.Rand, nS, nO, nA, nV int, coverage float64) *truthdata.Dataset {
	b := truthdata.NewBuilder("verify-random")
	srcs := make([]truthdata.SourceID, nS)
	for s := 0; s < nS; s++ {
		srcs[s] = b.Source(fmt.Sprintf("s%02d", s))
	}
	objs := make([]truthdata.ObjectID, nO)
	for o := 0; o < nO; o++ {
		objs[o] = b.Object(fmt.Sprintf("o%03d", o))
	}
	attrs := make([]truthdata.AttrID, nA)
	for a := 0; a < nA; a++ {
		attrs[a] = b.Attr(fmt.Sprintf("a%d", a))
	}
	claims := 0
	for o := 0; o < nO; o++ {
		for a := 0; a < nA; a++ {
			b.TruthIDs(objs[o], attrs[a], fmt.Sprintf("v%d", rng.Intn(nV)))
			for s := 0; s < nS; s++ {
				if coverage < 1 && rng.Float64() >= coverage {
					continue
				}
				b.ClaimIDs(srcs[s], objs[o], attrs[a], fmt.Sprintf("v%d", rng.Intn(nV)))
				claims++
			}
		}
	}
	if claims == 0 {
		b.ClaimIDs(srcs[0], objs[0], attrs[0], "v0")
	}
	return b.MustBuild()
}

// plantedDataset generates a structurally correlated dataset in the
// paper's DS2 configuration at reduced scale — the regime TD-AC is
// designed for, where the planted partition is recoverable.
func plantedDataset(objects int) (*synth.Generated, error) {
	return synth.Generate(synth.DS2().Scaled(objects))
}
