package verify

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"

	"tdac"
	"tdac/internal/server"
	"tdac/internal/sse"
	"tdac/internal/truthdata"
)

// Streaming and incremental invariants: the event stream is a faithful
// second transport for job results, and the server's incremental
// discovery path is a pure optimisation — neither may ever change an
// answer.

func init() {
	register(
		Invariant{
			Name:        "incremental-vs-cold",
			Class:       Metamorphic,
			Description: "discoveries through the server's per-dataset incremental state return the same truth, trust, partition and silhouette as cold from-scratch runs at every version of a growing dataset",
			Quick:       false,
			Check:       checkIncrementalVsCold,
		},
		Invariant{
			Name:        "stream-vs-poll",
			Class:       Differential,
			Description: "a job's terminal SSE frame carries byte-identical JSON to polling GET /v1/jobs/{id}, and the stream's frame ids are gapless from 1",
			Quick:       false,
			Check:       checkStreamVsPoll,
		},
	)
}

// compareResult checks a wire job result against a direct library run
// on the equivalent local dataset, field by field.
func compareResult(label string, jv *jobReply, local *truthdata.Dataset, direct *tdac.Result) error {
	if jv.State != string(server.JobDone) {
		return fmt.Errorf("%s: job finished %s: %s", label, jv.State, jv.Error)
	}
	if jv.Result == nil {
		return fmt.Errorf("%s: job done but carries no result", label)
	}
	if got, want := len(jv.Result.Truth), len(direct.Truth); got != want {
		return fmt.Errorf("%s: %d truth cells, cold run %d", label, got, want)
	}
	wantTruth := make(map[string]string, len(direct.Truth))
	for cell, v := range direct.Truth {
		wantTruth[local.ObjectName(cell.Object)+"\x1f"+local.AttrName(cell.Attr)] = v
	}
	for _, e := range jv.Result.Truth {
		if want := wantTruth[e.Object+"\x1f"+e.Attribute]; e.Value != want {
			return fmt.Errorf("%s: truth for %s/%s: incremental %q, cold %q", label, e.Object, e.Attribute, e.Value, want)
		}
	}
	wantTrust := make(map[string]float64, len(direct.Trust))
	for i, t := range direct.Trust {
		wantTrust[local.SourceName(truthdata.SourceID(i))] = t
	}
	if got, want := len(jv.Result.Trust), len(wantTrust); got != want {
		return fmt.Errorf("%s: %d trust entries, cold run %d", label, got, want)
	}
	for _, e := range jv.Result.Trust {
		if want, ok := wantTrust[e.Source]; !ok || e.Trust != want {
			return fmt.Errorf("%s: trust of %s: incremental %v, cold %v", label, e.Source, e.Trust, want)
		}
	}
	if jv.Result.Silhouette == nil {
		return fmt.Errorf("%s: result carries no silhouette", label)
	}
	if *jv.Result.Silhouette != direct.Silhouette {
		return fmt.Errorf("%s: silhouette: incremental %v, cold %v", label, *jv.Result.Silhouette, direct.Silhouette)
	}
	directGroups := make([][]string, len(direct.Partition))
	for i, g := range direct.Partition {
		for _, a := range g {
			directGroups[i] = append(directGroups[i], local.AttrName(a))
		}
	}
	if got, want := canonicalPartitionNames(jv.Result.Partition), canonicalPartitionNames(directGroups); got != want {
		return fmt.Errorf("%s: partition: incremental %s, cold %s", label, got, want)
	}
	return nil
}

func checkIncrementalVsCold(cfg Config) error {
	gen, err := plantedDataset(24)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	d := gen.Dataset

	s, err := server.New(server.Config{Workers: 1, QueueSize: 8})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	claims := make([]server.ClaimInput, len(d.Claims))
	for i, c := range d.Claims {
		claims[i] = server.ClaimInput{
			Source:    d.SourceName(c.Source),
			Object:    d.ObjectName(c.Object),
			Attribute: d.AttrName(c.Attr),
			Value:     c.Value,
		}
	}
	if err := postJSON(client, ts.URL+"/v1/datasets", map[string]string{"name": "grow"}, nil); err != nil {
		return err
	}

	// Grow the dataset in three appends. After each append, one
	// discovery through the server's incremental state must match a
	// cold direct run on an identically built local dataset. The first
	// round primes the state; later rounds exercise the append path.
	cuts := []int{len(claims) / 3, 2 * len(claims) / 3, len(claims)}
	prev := 0
	for round, cut := range cuts {
		if err := postJSON(client, ts.URL+"/v1/datasets/grow/claims", map[string]any{"claims": claims[prev:cut]}, nil); err != nil {
			return err
		}
		prev = cut
		// A fresh builder per round: Build returns the builder's own
		// dataset, whose compiled index is pinned on first use, so a
		// reused builder would hand later rounds a stale index.
		b := tdac.NewBuilder("verify-incr")
		for _, c := range claims[:cut] {
			b.Claim(c.Source, c.Object, c.Attribute, c.Value)
		}
		local, err := b.Build()
		if err != nil {
			return fmt.Errorf("local build: %w", err)
		}

		const seed = int64(1)
		cold, err := tdac.Discover(local, tdac.WithSeed(seed), tdac.WithReference("MajorityVote"))
		if err != nil {
			return fmt.Errorf("cold discover round %d: %w", round, err)
		}
		var submitted struct {
			ID string `json:"id"`
		}
		if err := postJSON(client, ts.URL+"/v1/datasets/grow/discover",
			map[string]any{"seed": seed, "incremental": true}, &submitted); err != nil {
			return err
		}
		jv, err := awaitJob(client, ts.URL, submitted.ID)
		if err != nil {
			return err
		}
		if err := compareResult(fmt.Sprintf("round %d (%d claims)", round, cut), jv, local, cold); err != nil {
			return err
		}

		// A sublinear search through the warm state must also match its
		// cold counterpart — the incremental geometry feeds the search's
		// dendrogram exactly as a fresh build would.
		coldSearch, err := tdac.Discover(local, tdac.WithSeed(seed),
			tdac.WithReference("MajorityVote"), tdac.WithSearch(tdac.SearchGolden))
		if err != nil {
			return fmt.Errorf("cold golden discover round %d: %w", round, err)
		}
		if err := postJSON(client, ts.URL+"/v1/datasets/grow/discover",
			map[string]any{"seed": seed, "incremental": true, "search": "golden"}, &submitted); err != nil {
			return err
		}
		jv, err = awaitJob(client, ts.URL, submitted.ID)
		if err != nil {
			return err
		}
		if err := compareResult(fmt.Sprintf("golden round %d (%d claims)", round, cut), jv, local, coldSearch); err != nil {
			return err
		}
	}
	return nil
}

func checkStreamVsPoll(cfg Config) error {
	gen, err := plantedDataset(16)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	d := gen.Dataset

	s, err := server.New(server.Config{Workers: 1, QueueSize: 8})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	if err := s.Registry().Create("verify", d); err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var submitted struct {
		ID string `json:"id"`
	}
	if err := postJSON(client, ts.URL+"/v1/datasets/verify/discover", map[string]any{"seed": 1}, &submitted); err != nil {
		return err
	}

	// Consume the whole stream to its terminal frame.
	resp, err := client.Get(ts.URL + "/v1/jobs/" + submitted.ID + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET events: %s", resp.Status)
	}
	r := sse.NewReader(resp.Body)
	var (
		frames   []sse.Event
		terminal *sse.Event
	)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading stream: %w", err)
		}
		frames = append(frames, ev)
	}
	if len(frames) == 0 {
		return fmt.Errorf("stream delivered no frames")
	}
	for i := range frames {
		if want := strconv.Itoa(i + 1); frames[i].ID != want {
			return fmt.Errorf("frame %d has id %q, want %s (ids must be gapless from 1)", i, frames[i].ID, want)
		}
	}
	terminal = &frames[len(frames)-1]
	if terminal.Name != "state" {
		return fmt.Errorf("stream ended on a %q frame, want the terminal state", terminal.Name)
	}

	// Byte identity: the terminal frame's payload is exactly the polled
	// body (the SSE encoding strips the trailing newline).
	poll, err := client.Get(ts.URL + "/v1/jobs/" + submitted.ID)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(poll.Body)
	poll.Body.Close()
	if err != nil {
		return err
	}
	if terminal.Data+"\n" != string(body) {
		return fmt.Errorf("terminal frame payload is not byte-identical to the polled job:\nstream: %s\npoll:   %s", terminal.Data, body)
	}

	// Resume from any mid-stream id replays exactly the suffix.
	mid := len(frames) / 2
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+submitted.ID+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Last-Event-ID", frames[mid].ID)
	resp2, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp2.Body.Close()
	r2 := sse.NewReader(resp2.Body)
	for i := mid + 1; ; i++ {
		ev, err := r2.Next()
		if err == io.EOF {
			if i != len(frames) {
				return fmt.Errorf("resume after id %s replayed %d frames, want %d", frames[mid].ID, i-mid-1, len(frames)-mid-1)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("reading resumed stream: %w", err)
		}
		if i >= len(frames) {
			return fmt.Errorf("resume replayed extra frame %+v past the sealed backlog", ev)
		}
		if ev != frames[i] {
			return fmt.Errorf("resumed frame %d = %+v, want %+v (must be an exact suffix)", i, ev, frames[i])
		}
	}
}
