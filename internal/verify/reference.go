package verify

import (
	"math"
	"math/rand"

	"tdac/internal/clustering"
	"tdac/internal/partition"
)

// This file holds the deliberately naive reference implementations the
// differential invariants compare the production paths against. They are
// written for obviousness, not speed: O(n²) float loops instead of packed
// popcount kernels, full-scan Lloyd assignment instead of bounded
// pruning, a sequential k loop instead of the worker pool. Where the
// production code claims bit-identity (the accelerations are exact), the
// references replicate its random-number consumption and tie-breaking —
// the same derived restart seeds, the same D²-sampling order, the same
// lowest-index-wins argmin — so any difference at all is a divergence.

// naiveDistMatrix is the O(n²) float reference for the packed popcount
// distance matrix: one dist.Between call per pair, no bit tricks.
func naiveDistMatrix(points [][]float64, dist clustering.Distance) [][]float64 {
	n := len(points)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist.Between(points[i], points[j])
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// naiveSilhouette implements the paper's Equations 5–7 directly from the
// definitions: per-point cohesion α (mean distance to the rest of the own
// cluster), separation β (mean distance to the nearest other cluster),
// coefficient (β−α)/max(α,β); cluster values average their points'
// coefficients and the partition value averages the non-empty clusters.
// Singleton clusters score 0, as does a degenerate single-cluster input.
func naiveSilhouette(d [][]float64, assign []int, k int) float64 {
	n := len(d)
	if k < 2 || n < 2 {
		return 0
	}
	members := make([][]int, k)
	for i, g := range assign {
		members[g] = append(members[g], i)
	}
	var total float64
	clusters := 0
	for g := 0; g < k; g++ {
		if len(members[g]) == 0 {
			continue
		}
		var clusterSum float64
		for _, i := range members[g] {
			clusterSum += naiveCoefficient(d, members, g, i)
		}
		total += clusterSum / float64(len(members[g]))
		clusters++
	}
	if clusters == 0 {
		return 0
	}
	return total / float64(clusters)
}

// naiveCoefficient is CS(a) of Equation 6 for point i in cluster g.
func naiveCoefficient(d [][]float64, members [][]int, g, i int) float64 {
	own := members[g]
	if len(own) < 2 {
		return 0
	}
	var alpha float64
	for _, j := range own {
		if j != i {
			alpha += d[i][j]
		}
	}
	alpha /= float64(len(own) - 1)
	beta := math.Inf(1)
	for h, other := range members {
		if h == g || len(other) == 0 {
			continue
		}
		var sum float64
		for _, j := range other {
			sum += d[i][j]
		}
		if mean := sum / float64(len(other)); mean < beta {
			beta = mean
		}
	}
	if math.IsInf(beta, 1) {
		return 0
	}
	den := math.Max(alpha, beta)
	if den == 0 {
		return 0
	}
	return (beta - alpha) / den
}

// naiveClustering is the outcome of one naive Lloyd run.
type naiveClustering struct {
	assign        []int
	centroids     [][]float64
	inertia       float64
	metricInertia float64
	iterations    int
}

// naiveKMeans mirrors the production clustering.KMeans contract — k-means++
// seeding, derived restart seeds (seed + r·7919), lowest-inertia restart
// wins, empty-cluster repair — with none of the accelerations: every
// point-to-centroid distance is a full scan, seeding never reads a
// precomputed matrix. Defaults match production: 100 iterations, 4
// restarts, seed 1.
type naiveKMeans struct {
	maxIter  int
	restarts int
	seed     int64
	dist     clustering.Distance
}

func (nk naiveKMeans) cluster(points [][]float64, k int) *naiveClustering {
	maxIter, restarts, seed := nk.maxIter, nk.restarts, nk.seed
	if maxIter == 0 {
		maxIter = 100
	}
	if restarts == 0 {
		restarts = 4
	}
	if seed == 0 {
		seed = 1
	}
	dist := nk.dist
	if dist == nil {
		dist = clustering.Euclidean{}
	}
	var best *naiveClustering
	for r := 0; r < restarts; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7919))
		c := naiveLloyd(points, k, maxIter, rng, dist)
		if best == nil || c.inertia < best.inertia {
			best = c
		}
	}
	return best
}

// naiveLloyd is one unaccelerated Lloyd run.
func naiveLloyd(points [][]float64, k, maxIter int, rng *rand.Rand, dist clustering.Distance) *naiveClustering {
	centroids, _ := naiveSeedPlusPlus(points, k, rng)
	n := len(points)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist.Between(p, centroids[c]); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed {
			break
		}
		naiveRecompute(points, assign, centroids)
		naiveRepairEmpty(points, assign, centroids, dist)
	}
	out := &naiveClustering{assign: assign, centroids: centroids, iterations: iters}
	for i, p := range points {
		out.inertia += naiveSqEuclidean(p, centroids[assign[i]])
		out.metricInertia += dist.Between(p, centroids[assign[i]])
	}
	return out
}

// naiveSeedPlusPlus is textbook k-means++ D²-sampling, consuming the rng
// exactly as production does (one Intn for the first pick, one Float64 —
// or Intn on an all-zero landscape — per further centroid). It also
// reports which point indices were drawn: on binary inputs the D²
// landscape is integer-exact, so the draws are a permutation-invariant
// observable of the seeding stage.
func naiveSeedPlusPlus(points [][]float64, k int, rng *rand.Rand) ([][]float64, []int) {
	dim := len(points[0])
	centroids := make([][]float64, k)
	picks := make([]int, k)
	first := rng.Intn(len(points))
	picks[0] = first
	centroids[0] = append(make([]float64, 0, dim), points[first]...)
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = naiveSqEuclidean(p, centroids[0])
	}
	for c := 1; c < k; c++ {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var next int
		if sum == 0 {
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * sum
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		picks[c] = next
		centroids[c] = append(make([]float64, 0, dim), points[next]...)
		for i, p := range points {
			if d := naiveSqEuclidean(p, centroids[c]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids, picks
}

// naiveRecompute sets each centroid to its members' coordinate-wise mean,
// with the same multiply-by-reciprocal arithmetic production uses (the
// bit-identity claim extends to the centroids).
func naiveRecompute(points [][]float64, assign []int, centroids [][]float64) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, x := range p {
			centroids[c][j] += x
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range centroids[c] {
			centroids[c][j] *= inv
		}
	}
}

// naiveRepairEmpty reassigns the farthest-from-centroid point into any
// cluster that lost all members, as production does.
func naiveRepairEmpty(points [][]float64, assign []int, centroids [][]float64, dist clustering.Distance) {
	counts := make([]int, len(centroids))
	for _, c := range assign {
		counts[c]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			continue
		}
		worst, worstD := -1, -1.0
		for i, p := range points {
			if counts[assign[i]] <= 1 {
				continue
			}
			if d := dist.Between(p, centroids[assign[i]]); d > worstD {
				worst, worstD = i, d
			}
		}
		if worst < 0 {
			continue
		}
		counts[assign[worst]]--
		assign[worst] = c
		counts[c] = 1
		copy(centroids[c], points[worst])
	}
}

func naiveSqEuclidean(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// naiveKSweep is the sequential reference for TD-AC's parallel k-sweep
// (Algorithm 1 lines 4–18): for each k in [minK, maxK] run the naive
// k-means, score the clustering with the naive silhouette over the naive
// distance matrix, and keep the first k with the strictly highest value.
func naiveKSweep(vectors [][]float64, minK, maxK int, dist clustering.Distance, seed int64) (partition.Partition, float64, []float64) {
	if minK < 2 {
		minK = 2
	}
	if maxK == 0 || maxK > len(vectors)-1 {
		maxK = len(vectors) - 1
	}
	if minK > maxK {
		return partition.Whole(len(vectors)), 0, nil
	}
	d := naiveDistMatrix(vectors, dist)
	nk := naiveKMeans{seed: seed, dist: dist}
	var (
		best     partition.Partition
		bestSil  float64
		haveBest bool
		sils     []float64
	)
	for k := minK; k <= maxK; k++ {
		c := nk.cluster(vectors, k)
		sil := naiveSilhouette(d, c.assign, k)
		sils = append(sils, sil)
		if !haveBest || sil > bestSil {
			haveBest = true
			bestSil = sil
			best = partition.FromAssign(c.assign, k)
		}
	}
	return best, bestSil, sils
}
