package verify

import (
	"testing"
)

// FuzzVerifyInvariants drives every quick invariant with fuzzer-chosen
// seeds: the generators derive all datasets, vectors and permutations
// from the seed, so the fuzzer explores the input space of the
// differential and metamorphic checks. Any crash or violation is a
// minimised divergence between a production path and its reference.
func FuzzVerifyInvariants(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		cfg := Config{Seed: seed, Trials: 1}.withDefaults()
		for _, inv := range Invariants() {
			if !inv.Quick {
				continue
			}
			if err := inv.Check(cfg); err != nil {
				t.Errorf("seed %d: %s invariant %q violated: %v", seed, inv.Class, inv.Name, err)
			}
		}
	})
}
