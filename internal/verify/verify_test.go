package verify

import (
	"strings"
	"testing"
)

// TestInvariantRegistry pins the harness's shape: every class is
// represented, names are unique, and enough invariants exist to mean
// something.
func TestInvariantRegistry(t *testing.T) {
	invs := Invariants()
	if len(invs) < 8 {
		t.Fatalf("only %d invariants registered, want at least 8", len(invs))
	}
	seen := make(map[string]bool)
	byClass := make(map[Class]int)
	for _, inv := range invs {
		if inv.Name == "" || inv.Description == "" || inv.Check == nil {
			t.Fatalf("invariant %+v is incomplete", inv)
		}
		if seen[inv.Name] {
			t.Fatalf("duplicate invariant name %q", inv.Name)
		}
		seen[inv.Name] = true
		byClass[inv.Class]++
	}
	for _, c := range []Class{Differential, Metamorphic, Oracle} {
		if byClass[c] == 0 {
			t.Errorf("no %s invariants registered", c)
		}
	}
}

// TestInvariants is the main harness entry: every registered invariant
// must hold. Each invariant runs as its own subtest so a violation names
// itself, and the quick ones additionally run under a second seed.
func TestInvariants(t *testing.T) {
	for _, inv := range Invariants() {
		inv := inv
		t.Run(inv.Name, func(t *testing.T) {
			t.Parallel()
			if err := inv.Check(Config{}.withDefaults()); err != nil {
				t.Errorf("%s invariant violated: %v\n(%s)", inv.Class, err, inv.Description)
			}
			if inv.Quick {
				if err := inv.Check(Config{Seed: 42, Trials: 2}); err != nil {
					t.Errorf("%s invariant violated under seed 42: %v", inv.Class, err)
				}
			}
		})
	}
}

// TestRelabelTieSensitivityRegressions pins the two divergences fuzzing
// found in the original, over-strong relabel invariant. Seed -91 (corpus
// entry e038d8f8c61ce38b): two k=2 restarts whose inertias agree to the
// last ulp (31.999999999999993 vs …96) swap winners when source/object
// relabeling reorders the coordinate sums in Lloyd's assignment. Seed
// 1099511627762 (corpus entry 9824bc55a2d70c2d): an exact distance tie
// inside one Lloyd iteration resolves differently under permuted
// summation and the trajectory lands in a different local optimum
// (inertia 17 vs 18). The refined invariant must classify both as float
// tie sensitivity — exact truth-vector equivariance, identical seeding
// draws — not as failures.
func TestRelabelTieSensitivityRegressions(t *testing.T) {
	for _, seed := range []int64{-91, 1099511627762} {
		if err := checkRelabel(Config{Seed: seed, Trials: 1}.withDefaults()); err != nil {
			t.Errorf("seed %d: relabel invariant rejects a documented float tie swap: %v", seed, err)
		}
	}
}

// TestRunAndSummarize exercises the reporting path the CLI shares.
func TestRunAndSummarize(t *testing.T) {
	results := Run(Config{}, func(inv Invariant) bool { return inv.Quick })
	if len(results) == 0 {
		t.Fatal("no quick invariants ran")
	}
	if failed := Failed(results); len(failed) != 0 {
		t.Fatalf("quick invariants failed: %s", Summarize(results))
	}
	sum := Summarize(results)
	if !strings.Contains(sum, "invariants verified") {
		t.Errorf("summary lacks verdict line:\n%s", sum)
	}
	for _, r := range results {
		if !strings.Contains(sum, r.Invariant.Name) {
			t.Errorf("summary lacks invariant %q:\n%s", r.Invariant.Name, sum)
		}
	}
}
