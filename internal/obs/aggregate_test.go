package obs

import (
	"sync"
	"testing"
	"time"
)

func TestAggregateNilSafety(t *testing.T) {
	var a *Aggregate
	a.Add(&RunStats{Total: time.Second}) // must not panic
	snap := a.Snapshot()
	if snap.Runs != 0 || snap.Total != 0 || len(snap.Phases) != 0 {
		t.Fatalf("nil aggregate snapshot not zero: %+v", snap)
	}
	NewAggregate().Add(nil) // nil tree must not panic either
}

func TestAggregateFoldsRuns(t *testing.T) {
	a := NewAggregate()
	a.Add(&RunStats{
		Total: 10 * time.Millisecond,
		Phases: []PhaseStats{
			{Phase: PhaseKSweep, Duration: 6 * time.Millisecond},
			{Phase: PhaseReference, Duration: 2 * time.Millisecond},
		},
	})
	a.Add(&RunStats{
		Total: 5 * time.Millisecond,
		Phases: []PhaseStats{
			{Phase: PhaseKSweep, Duration: 3 * time.Millisecond},
		},
	})
	snap := a.Snapshot()
	if snap.Runs != 2 {
		t.Fatalf("runs = %d, want 2", snap.Runs)
	}
	if snap.Total != 15*time.Millisecond {
		t.Fatalf("total = %v, want 15ms", snap.Total)
	}
	if len(snap.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2 entries", snap.Phases)
	}
	// Pipeline order: reference before k-sweep.
	if snap.Phases[0].Phase != PhaseReference || snap.Phases[1].Phase != PhaseKSweep {
		t.Fatalf("phase order wrong: %+v", snap.Phases)
	}
	if snap.Phases[1].Count != 2 || snap.Phases[1].Total != 9*time.Millisecond {
		t.Fatalf("k-sweep totals wrong: %+v", snap.Phases[1])
	}
}

func TestAggregateUnknownPhasesSortAfterKnown(t *testing.T) {
	a := NewAggregate()
	a.Add(&RunStats{Phases: []PhaseStats{
		{Phase: Phase("zz-custom"), Duration: time.Millisecond},
		{Phase: Phase("aa-custom"), Duration: time.Millisecond},
		{Phase: PhaseMerge, Duration: time.Millisecond},
	}})
	snap := a.Snapshot()
	want := []Phase{PhaseMerge, "aa-custom", "zz-custom"}
	for i, p := range snap.Phases {
		if p.Phase != want[i] {
			t.Fatalf("order[%d] = %q, want %q (all: %+v)", i, p.Phase, want[i], snap.Phases)
		}
	}
}

func TestAggregateConcurrentAdd(t *testing.T) {
	a := NewAggregate()
	var wg sync.WaitGroup
	const goroutines, adds = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				a.Add(&RunStats{
					Total:  time.Millisecond,
					Phases: []PhaseStats{{Phase: PhaseDiscover, Duration: time.Millisecond}},
				})
			}
		}()
	}
	wg.Wait()
	snap := a.Snapshot()
	if snap.Runs != goroutines*adds {
		t.Fatalf("runs = %d, want %d", snap.Runs, goroutines*adds)
	}
	if snap.Phases[0].Count != goroutines*adds {
		t.Fatalf("discover count = %d, want %d", snap.Phases[0].Count, goroutines*adds)
	}
}

// BenchmarkAggregateAdd measures folding one RunStats tree into the
// process-lifetime aggregate, the per-job cost /metrics imposes.
func BenchmarkAggregateAdd(b *testing.B) {
	a := NewAggregate()
	stats := &RunStats{
		Total: 10 * time.Millisecond,
		Phases: []PhaseStats{
			{Phase: PhaseReference, Duration: 2 * time.Millisecond},
			{Phase: PhaseKSweep, Duration: 6 * time.Millisecond},
			{Phase: PhaseBaseRuns, Duration: 2 * time.Millisecond},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(stats)
	}
}
