package obs

import "time"

// EventKind classifies one streaming pipeline event.
type EventKind string

// The streaming event kinds. Phase events bracket every pipeline stage;
// k events report per-k sweep progress; group events report per-group
// base-run completion. Lifecycle events (queued/running/terminal) are
// not emitted here — they belong to whoever owns the job, not to the
// pipeline (internal/server adds them around the run).
const (
	EventPhaseStart EventKind = "phase-start"
	EventPhaseEnd   EventKind = "phase-end"
	EventK          EventKind = "k"
	EventGroup      EventKind = "group"
)

// Event is one streaming observation of an in-flight pipeline run — the
// push counterpart of the pull-only RunStats tree. Events carry values
// the pipeline already computed, never influence it: a run with a sink
// attached is bit-identical to one without (the same inertness contract
// as the Recorder, pinned by core.TestStatsObservationIsInert).
type Event struct {
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Phase is set on phase-start and phase-end events.
	Phase Phase `json:"phase,omitempty"`
	// Elapsed is the phase's wall time, set on phase-end events.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	// K and Silhouette describe one explored cluster count (kind "k").
	K          int     `json:"k,omitempty"`
	Silhouette float64 `json:"silhouette,omitempty"`
	// Group is the finished group's partition index (kind "group").
	Group int `json:"group,omitempty"`
	// Attrs and Claims size the finished group (kind "group").
	Attrs  int `json:"attrs,omitempty"`
	Claims int `json:"claims,omitempty"`
}

// EventSink receives streaming events while a run is in flight. Events
// from parallel stages (the k-sweep, parallel base runs) arrive in
// completion order, which is scheduling-dependent; consumers must not
// infer determinism from event order. A sink runs on the pipeline's
// critical path and may be called concurrently — keep it fast and make
// it safe for concurrent calls.
type EventSink func(Event)

// NewRecorderEvents returns an enabled Recorder that both collects the
// RunStats tree and streams Events to sink (either argument may be nil).
func NewRecorderEvents(observer Observer, sink EventSink) *Recorder {
	return &Recorder{observer: observer, sink: sink}
}

// emit forwards one event to the sink, if any. Safe on a nil Recorder.
func (r *Recorder) emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// KDone streams one explored cluster count of the k-sweep. Emission
// only: per-k statistics still arrive in bulk via SweepDone, so the
// RunStats tree is unchanged whether or not a sink is attached.
func (r *Recorder) KDone(k int, silhouette float64) {
	r.emit(Event{Kind: EventK, K: k, Silhouette: silhouette})
}
