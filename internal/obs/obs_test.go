package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsInert pins the disabled subsystem: every method on a
// nil *Recorder must no-op (and Phase must hand back a callable no-op),
// since instrumented pipeline code calls them unconditionally.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.Start()
	r.Phase(PhaseReference)() // must not panic
	r.PhaseDone(PhaseKSweep, time.Second)
	r.MatrixDone(MatrixStats{})
	r.SweepDone(SweepStats{}, CacheStats{})
	r.GroupDone(GroupStats{})
	r.SetParallelGroups(true)
	if got := r.Finish(); got != nil {
		t.Fatalf("nil recorder Finish = %+v, want nil", got)
	}
}

func TestRecorderCollectsTree(t *testing.T) {
	var events []Phase
	r := NewRecorder(func(p Phase, d time.Duration) { events = append(events, p) })
	r.Start()
	done := r.Phase(PhaseReference)
	time.Sleep(time.Millisecond)
	done()
	r.PhaseDone(PhaseTruthVectors, 2*time.Millisecond)
	r.MatrixDone(MatrixStats{Points: 6, Pairs: 15, Packed: true})
	r.SweepDone(SweepStats{
		Seed: 1, Workers: 2, MinK: 2, MaxK: 4,
		Ks: []KStats{
			{K: 2, Iterations: 3, Converged: true, Silhouette: 0.2},
			{K: 3, Iterations: 5, Converged: true, Silhouette: 0.6},
			{K: 4, Iterations: 7, Converged: false, Silhouette: 0.4},
		},
	}, CacheStats{SilhouetteEvals: 3, SeededRuns: 12})
	r.GroupDone(GroupStats{Group: 1, Attrs: 3, Claims: 40})
	r.GroupDone(GroupStats{Group: 0, Attrs: 3, Claims: 50})
	s := r.Finish()

	if s.Total <= 0 {
		t.Errorf("Total = %v, want > 0", s.Total)
	}
	if got := s.PhaseDuration(PhaseReference); got < time.Millisecond {
		t.Errorf("reference phase = %v, want >= 1ms", got)
	}
	if got := s.PhaseDuration(PhaseTruthVectors); got != 2*time.Millisecond {
		t.Errorf("truth-vectors phase = %v, want 2ms", got)
	}
	if len(s.Sweeps) != 1 {
		t.Fatalf("sweeps = %d, want 1", len(s.Sweeps))
	}
	sw := s.Sweeps[0]
	if sw.Iterations() != 15 {
		t.Errorf("sweep iterations = %d, want 15", sw.Iterations())
	}
	if sw.Converged() != 2 {
		t.Errorf("converged ks = %d, want 2", sw.Converged())
	}
	if k, sil := sw.Best(); k != 3 || sil != 0.6 {
		t.Errorf("best = (%d, %v), want (3, 0.6)", k, sil)
	}
	if s.Cache.SilhouetteEvals != 3 || s.Cache.SeededRuns != 12 {
		t.Errorf("cache = %+v", s.Cache)
	}
	// Groups arrive in completion order but come back sorted by index.
	if len(s.Groups) != 2 || s.Groups[0].Group != 0 || s.Groups[1].Group != 1 {
		t.Errorf("groups not sorted by index: %+v", s.Groups)
	}
	// Observer saw the phases in completion order.
	if len(events) != 2 || events[0] != PhaseReference || events[1] != PhaseTruthVectors {
		t.Errorf("observer events = %v", events)
	}
}

// TestRecorderConcurrentWrites exercises the paths written from worker
// goroutines (per-group records, phase completions) under the race
// detector.
func TestRecorderConcurrentWrites(t *testing.T) {
	r := NewRecorder(nil)
	r.Start()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r.GroupDone(GroupStats{Group: g, Claims: g})
			r.PhaseDone(PhaseBaseRuns, time.Duration(g))
		}(g)
	}
	wg.Wait()
	s := r.Finish()
	if len(s.Groups) != 16 || len(s.Phases) != 16 {
		t.Fatalf("got %d groups, %d phases; want 16, 16", len(s.Groups), len(s.Phases))
	}
	for i, g := range s.Groups {
		if g.Group != i {
			t.Fatalf("groups not sorted: %+v", s.Groups)
		}
	}
}

func TestMemoryDeltas(t *testing.T) {
	r := NewRecorder(nil)
	r.Start()
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 64<<10)
	}
	s := r.Finish()
	if len(sink) != 64 {
		t.Fatal("unreachable")
	}
	if s.Memory.TotalAllocDelta < 64*64<<10 {
		t.Errorf("TotalAllocDelta = %d, want >= %d", s.Memory.TotalAllocDelta, 64*64<<10)
	}
	if s.Memory.MallocsDelta == 0 {
		t.Error("MallocsDelta = 0, want > 0")
	}
}

func TestRenderTree(t *testing.T) {
	s := &RunStats{
		Total: 10 * time.Millisecond,
		Phases: []PhaseStats{
			{PhaseReference, time.Millisecond},
			{PhaseTruthVectors, time.Millisecond},
			{PhaseDistanceMatrix, time.Millisecond},
			{PhaseKSweep, 4 * time.Millisecond},
			{PhaseBaseRuns, 2 * time.Millisecond},
			{PhaseMerge, time.Millisecond},
		},
		Matrix: []MatrixStats{{Points: 6, Pairs: 15, Packed: true}},
		Sweeps: []SweepStats{{MinK: 2, MaxK: 5, Workers: 1, Ks: []KStats{
			{K: 2, Iterations: 4, Converged: true, Silhouette: 0.7},
		}}},
		Groups: []GroupStats{{Group: 0, Attrs: 6, Claims: 100, Iterations: 2}},
		Cache:  CacheStats{SilhouetteEvals: 4, SeededRuns: 16},
	}
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"run stats: total 10ms",
		"reference", "truth-vectors", "distance-matrix", "k-sweep",
		"base-runs", "merge",
		"15 pairs", "packed",
		"best k=2",
		"group 0: 6 attrs, 100 claims",
		"4 silhouette evaluation(s)",
		"memory:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

// TestJSONShape pins the wire shape tdacbench consumes: durations as
// integer nanoseconds under *_ns keys, counters under stable names.
func TestJSONShape(t *testing.T) {
	s := &RunStats{
		Total:  time.Millisecond,
		Phases: []PhaseStats{{PhaseKSweep, time.Millisecond}},
		Sweeps: []SweepStats{{MinK: 2, MaxK: 3}},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"total_ns":1000000`, `"phase":"k-sweep"`, `"min_k":2`, `"memory"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON missing %s: %s", key, raw)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond: "500ns",
		42 * time.Microsecond: "42µs",
		2 * time.Second:       "2s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
	if got := fmtDur(1234567 * time.Nanosecond); got != "1.23ms" {
		t.Errorf("fmtDur(1.234567ms) = %q, want 1.23ms", got)
	}
	if got := fmtBytes(512); got != "512B" {
		t.Errorf("fmtBytes(512) = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MiB" {
		t.Errorf("fmtBytes(3MiB) = %q", got)
	}
	if got := fmtBytesSigned(-1024); got != "-1.0KiB" {
		t.Errorf("fmtBytesSigned(-1024) = %q", got)
	}
}
