// Package obs implements the observability subsystem of the TD-AC
// pipeline. A Recorder collects a RunStats tree — phase-scoped wall
// times, per-k clustering convergence counters, per-group base-run cost,
// distance-cache reuse and allocation deltas — for one Discover, Run or
// CheckStability call.
//
// The Recorder is nil-safe by design: every method on a nil *Recorder is
// a no-op, so instrumented code paths carry a single pointer comparison
// when observation is off (the overhead budget is ≤ 2% on the k-sweep
// benchmark, see DESIGN.md §8). Observation is strictly one-directional:
// a Recorder only receives values the pipeline already computed, so an
// observed run is bit-identical to an unobserved one (pinned by
// core.TestStatsObservationIsInert).
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Phase identifies one stage of the pipeline in a RunStats tree.
type Phase string

// The pipeline phases, in execution order. A TD-AC Discover passes
// through Index → Reference → TruthVectors → DistanceMatrix → KSweep →
// BaseRuns → Merge; a plain base-algorithm Run has the single Discover
// phase; CheckStability repeats DistanceMatrix/KSweep once per reseeded
// run after one Reference/TruthVectors prologue.
const (
	// PhaseIndex compiles the dataset's claim index (and its CSR
	// adjacency on first algorithm use), shared by the reference run and
	// every per-group base run.
	PhaseIndex          Phase = "index"
	PhaseReference      Phase = "reference"
	PhaseTruthVectors   Phase = "truth-vectors"
	PhaseDistanceMatrix Phase = "distance-matrix"
	PhaseKSweep         Phase = "k-sweep"
	PhaseBaseRuns       Phase = "base-runs"
	PhaseMerge          Phase = "merge"
	PhaseDiscover       Phase = "discover"
	// PhaseIncrementalSync replaces Index/Reference/TruthVectors and the
	// matrix build on the incremental-discovery path: it covers syncing a
	// maintained IncrementalState to the dataset version under discovery
	// (vote deltas, reference-truth repair, dirty-row geometry updates).
	PhaseIncrementalSync Phase = "incremental-sync"
)

// PhaseStats is one node of the phase-time tree: a phase and the wall
// time it consumed. Phases that ran more than once (the k-sweeps of a
// stability check) appear once per execution, in execution order.
type PhaseStats struct {
	Phase    Phase         `json:"phase"`
	Duration time.Duration `json:"duration_ns"`
}

// KStats records the clustering of one explored cluster count.
type KStats struct {
	// K is the explored cluster count.
	K int `json:"k"`
	// Duration is the wall time of the k-means run plus its silhouette
	// evaluation.
	Duration time.Duration `json:"duration_ns"`
	// Iterations is the number of Lloyd rounds of the winning restart.
	Iterations int `json:"iterations"`
	// Converged reports whether the winning restart reached a fixed
	// point before the iteration cap.
	Converged bool `json:"converged"`
	// Silhouette and Inertia score the clustering (Equations 5–7 and 3).
	Silhouette float64 `json:"silhouette"`
	Inertia    float64 `json:"inertia"`
}

// SweepStats describes one full k-sweep (Algorithm 1 lines 4–18) or one
// sublinear k-search over the same range.
type SweepStats struct {
	// Seed is the k-means base seed the sweep derived its restarts from.
	Seed int64 `json:"seed"`
	// Workers is the resolved worker-pool size the sweep ran on.
	Workers int `json:"workers"`
	// MinK and MaxK bound the requested range. The exhaustive sweep
	// explores every k in it; a search strategy probes a subset, so Ks
	// may hold holes — consumers must read each entry's K field, never
	// reconstruct it as MinK+index.
	MinK int `json:"min_k"`
	MaxK int `json:"max_k"`
	// Strategy names the k-selection strategy ("golden", "mdl"); empty
	// for the default exhaustive sweep.
	Strategy string `json:"strategy,omitempty"`
	// Duration is the wall time of the whole sweep.
	Duration time.Duration `json:"duration_ns"`
	// Ks holds one entry per explored cluster count, ascending k.
	Ks []KStats `json:"ks"`
}

// Iterations sums the Lloyd rounds over every explored k.
func (s *SweepStats) Iterations() int {
	total := 0
	for _, k := range s.Ks {
		total += k.Iterations
	}
	return total
}

// Converged counts the explored ks whose winning restart converged.
func (s *SweepStats) Converged() int {
	n := 0
	for _, k := range s.Ks {
		if k.Converged {
			n++
		}
	}
	return n
}

// MatrixStats describes the shared pairwise distance matrix build.
type MatrixStats struct {
	// Points is the number of vectors (attributes), Pairs the number of
	// distances materialised: Points·(Points-1)/2.
	Points int `json:"points"`
	Pairs  int `json:"pairs"`
	// Packed reports whether the popcount kernels built the matrix;
	// Masked whether the two-plane sparse-aware encoding was active.
	// The build's wall time is the matching distance-matrix entry of
	// RunStats.Phases.
	Packed bool `json:"packed"`
	Masked bool `json:"masked"`
}

// CacheStats counts how often the shared distance matrix was consumed
// instead of recomputing O(dim) vector distances.
type CacheStats struct {
	// SilhouetteEvals counts silhouette evaluations served entirely from
	// the matrix — one per explored k, across every sweep.
	SilhouetteEvals int `json:"silhouette_evals"`
	// SeededRuns counts k-means++ seedings whose D² samples read the
	// matrix instead of scanning vectors (restarts × explored k when the
	// packed dense path is active; 0 on masked or custom encodings).
	SeededRuns int `json:"seeded_runs"`
}

// GroupStats records one per-group base-algorithm run (Algorithm 1
// lines 20–24).
type GroupStats struct {
	// Group is the group's index in the selected partition.
	Group int `json:"group"`
	// Attrs and Claims size the group's projection of the dataset.
	Attrs  int `json:"attrs"`
	Claims int `json:"claims"`
	// Iterations is the number of update rounds the base algorithm ran.
	Iterations int `json:"iterations"`
	// Duration is the wall time of the group's run, including the
	// dataset projection.
	Duration time.Duration `json:"duration_ns"`
}

// MemoryStats holds process-wide allocation deltas between Start and
// Finish, from runtime.ReadMemStats. With parallel stages the deltas
// include every goroutine's allocations, not only the pipeline's.
type MemoryStats struct {
	// TotalAllocDelta is the cumulative bytes allocated during the run.
	TotalAllocDelta uint64 `json:"total_alloc_bytes"`
	// MallocsDelta is the number of heap objects allocated.
	MallocsDelta uint64 `json:"mallocs"`
	// HeapAllocDelta is the change in live heap bytes (can be negative
	// when a GC ran).
	HeapAllocDelta int64 `json:"heap_alloc_delta_bytes"`
	// GCCycles is the number of garbage collections completed.
	GCCycles uint32 `json:"gc_cycles"`
}

// RunStats is the full observation tree of one pipeline run.
type RunStats struct {
	// Total is the wall time between Start and Finish.
	Total time.Duration `json:"total_ns"`
	// Phases holds the phase wall times in execution order.
	Phases []PhaseStats `json:"phases"`
	// Matrix describes the distance-matrix builds, one per sweep.
	Matrix []MatrixStats `json:"matrix,omitempty"`
	// Sweeps holds one entry per k-sweep executed (Discover: one;
	// CheckStability: one per reseeded run).
	Sweeps []SweepStats `json:"sweeps,omitempty"`
	// Groups holds the per-group base-run timings of the selected
	// partition; ParallelGroups reports whether they ran concurrently.
	Groups         []GroupStats `json:"groups,omitempty"`
	ParallelGroups bool         `json:"parallel_groups"`
	// Cache counts distance-matrix reuse across the run.
	Cache CacheStats `json:"cache"`
	// Memory holds allocation deltas over the run.
	Memory MemoryStats `json:"memory"`
}

// PhaseDuration sums the wall time of every execution of phase p.
func (s *RunStats) PhaseDuration(p Phase) time.Duration {
	var d time.Duration
	for _, ps := range s.Phases {
		if ps.Phase == p {
			d += ps.Duration
		}
	}
	return d
}

// Observer receives phase-completion events while a run is in flight —
// the streaming face of the subsystem, behind WithObserver. Calls arrive
// in phase-completion order, from the goroutine finishing the phase.
type Observer func(phase Phase, elapsed time.Duration)

// Recorder accumulates a RunStats tree for one pipeline run. The zero
// value is not used directly; NewRecorder returns a ready one and a nil
// *Recorder is the disabled subsystem: every method no-ops.
//
// A Recorder is single-use — Start once, observe one public API call,
// Finish once — but safe for the concurrent writes of the parallel
// k-sweep and parallel per-group base runs.
type Recorder struct {
	mu       sync.Mutex
	started  time.Time
	startMem runtime.MemStats
	stats    RunStats
	observer Observer
	// sink, when non-nil, receives streaming Events (see events.go).
	// Emission is strictly one-directional, like the observer: the sink
	// only sees values the pipeline already computed.
	sink EventSink
}

// NewRecorder returns an enabled Recorder with an optional observer
// (nil is fine).
func NewRecorder(observer Observer) *Recorder {
	return &Recorder{observer: observer}
}

// Enabled reports whether stats are being collected; callers use it to
// skip work (time.Now, ReadMemStats) that exists only to be recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Start marks the beginning of the run and snapshots the allocator.
func (r *Recorder) Start() {
	if r == nil {
		return
	}
	runtime.ReadMemStats(&r.startMem)
	r.started = time.Now()
}

var noop = func() {}

// Phase starts timing one phase; the returned func completes it. On a
// nil Recorder it returns a shared no-op, so call sites need no guards:
//
//	done := rec.Phase(obs.PhaseReference)
//	... the phase's work ...
//	done()
func (r *Recorder) Phase(p Phase) func() {
	if r == nil {
		return noop
	}
	r.emit(Event{Kind: EventPhaseStart, Phase: p})
	t0 := time.Now()
	return func() { r.PhaseDone(p, time.Since(t0)) }
}

// PhaseDone records one completed phase and notifies the observer and
// the event sink.
func (r *Recorder) PhaseDone(p Phase, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stats.Phases = append(r.stats.Phases, PhaseStats{Phase: p, Duration: d})
	obs := r.observer
	r.mu.Unlock()
	if obs != nil {
		obs(p, d)
	}
	r.emit(Event{Kind: EventPhaseEnd, Phase: p, Elapsed: d})
}

// MatrixDone records one distance-matrix build.
func (r *Recorder) MatrixDone(m MatrixStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stats.Matrix = append(r.stats.Matrix, m)
	r.mu.Unlock()
}

// SweepDone records one completed k-sweep and accumulates its cache
// reuse counters.
func (r *Recorder) SweepDone(s SweepStats, cache CacheStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stats.Sweeps = append(r.stats.Sweeps, s)
	r.stats.Cache.SilhouetteEvals += cache.SilhouetteEvals
	r.stats.Cache.SeededRuns += cache.SeededRuns
	r.mu.Unlock()
}

// GroupDone records one per-group base run; it is called concurrently
// under parallel group execution.
func (r *Recorder) GroupDone(g GroupStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stats.Groups = append(r.stats.Groups, g)
	r.mu.Unlock()
	r.emit(Event{Kind: EventGroup, Group: g.Group, Attrs: g.Attrs, Claims: g.Claims})
}

// SetParallelGroups marks that the per-group base runs ran concurrently.
func (r *Recorder) SetParallelGroups(parallel bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stats.ParallelGroups = parallel
	r.mu.Unlock()
}

// Finish closes the run: it stamps the total wall time, computes the
// allocation deltas, sorts the per-group records (concurrent completion
// order is nondeterministic) and returns the finished tree. The Recorder
// must not be reused afterwards.
func (r *Recorder) Finish() *RunStats {
	if r == nil {
		return nil
	}
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Total = time.Since(r.started)
	r.stats.Memory = MemoryStats{
		TotalAllocDelta: end.TotalAlloc - r.startMem.TotalAlloc,
		MallocsDelta:    end.Mallocs - r.startMem.Mallocs,
		HeapAllocDelta:  int64(end.HeapAlloc) - int64(r.startMem.HeapAlloc),
		GCCycles:        end.NumGC - r.startMem.NumGC,
	}
	sortGroups(r.stats.Groups)
	out := r.stats
	return &out
}

// sortGroups orders group records by group index (insertion sort; group
// counts are small).
func sortGroups(gs []GroupStats) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].Group < gs[j-1].Group; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}
