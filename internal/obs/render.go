package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Render writes the stats tree as indented human-readable text — the
// view behind cmd/tdac's -stats flag.
//
//	run stats: total 12.4ms
//	├─ reference        1.2ms   9.8%
//	├─ truth-vectors    0.3ms   2.4%
//	├─ distance-matrix  0.8ms   6.5%   24 points, 276 pairs, packed
//	├─ k-sweep          8.0ms  64.2%   k ∈ [2,23] on 8 workers: 22 ks, 61 iterations, all converged, best k=4 (silhouette 0.424)
//	├─ base-runs        1.9ms  15.4%   4 groups, sequential
//	└─ merge            0.2ms   1.6%
//	cache:  22 silhouette evaluations and 88 k-means++ seedings served from the shared distance matrix
//	memory: 1.2MiB allocated (3456 objects), live heap +401.2KiB, 0 GC cycles
func (s *RunStats) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "run stats: total %s\n", fmtDur(s.Total))

	sweep, matrix, group := 0, 0, 0
	for i, ps := range s.Phases {
		branch := "├─"
		if i == len(s.Phases)-1 {
			branch = "└─"
		}
		pct := ""
		if s.Total > 0 {
			pct = fmt.Sprintf("%5.1f%%", 100*float64(ps.Duration)/float64(s.Total))
		}
		fmt.Fprintf(&b, "%s %-16s %8s  %s", branch, ps.Phase, fmtDur(ps.Duration), pct)
		switch ps.Phase {
		case PhaseDistanceMatrix:
			if matrix < len(s.Matrix) {
				m := s.Matrix[matrix]
				matrix++
				kind := "float kernels"
				if m.Packed {
					kind = "packed"
					if m.Masked {
						kind = "packed two-plane"
					}
				}
				fmt.Fprintf(&b, "   %d points, %d pairs, %s", m.Points, m.Pairs, kind)
			}
		case PhaseKSweep:
			if sweep < len(s.Sweeps) {
				sw := s.Sweeps[sweep]
				sweep++
				conv := fmt.Sprintf("%d/%d converged", sw.Converged(), len(sw.Ks))
				if sw.Converged() == len(sw.Ks) {
					conv = "all converged"
				}
				bestK, bestSil := sw.Best()
				span := fmt.Sprintf("k ∈ [%d,%d]", sw.MinK, sw.MaxK)
				if sw.Strategy != "" {
					span = fmt.Sprintf("%s search, %d/%d ks probed in [%d,%d]",
						sw.Strategy, len(sw.Ks), sw.MaxK-sw.MinK+1, sw.MinK, sw.MaxK)
				}
				fmt.Fprintf(&b, "   %s on %d worker(s): %d iterations, %s, best k=%d (silhouette %.3f)",
					span, sw.Workers, sw.Iterations(), conv, bestK, bestSil)
			}
		case PhaseBaseRuns:
			mode := "sequential"
			if s.ParallelGroups {
				mode = "parallel"
			}
			fmt.Fprintf(&b, "   %d group(s), %s", len(s.Groups), mode)
		}
		b.WriteByte('\n')
		if ps.Phase == PhaseBaseRuns {
			for group < len(s.Groups) {
				g := s.Groups[group]
				group++
				fmt.Fprintf(&b, "│    group %d: %d attrs, %d claims, %d iterations, %s\n",
					g.Group, g.Attrs, g.Claims, g.Iterations, fmtDur(g.Duration))
			}
		}
	}
	if s.Cache != (CacheStats{}) {
		fmt.Fprintf(&b, "cache:  %d silhouette evaluation(s) and %d k-means++ seeding(s) served from the shared distance matrix\n",
			s.Cache.SilhouetteEvals, s.Cache.SeededRuns)
	}
	fmt.Fprintf(&b, "memory: %s allocated (%d objects), live heap %s, %d GC cycle(s)\n",
		fmtBytes(int64(s.Memory.TotalAllocDelta)), s.Memory.MallocsDelta,
		fmtBytesSigned(s.Memory.HeapAllocDelta), s.Memory.GCCycles)
	_, err := io.WriteString(w, b.String())
	return err
}

// Best returns the explored k with the highest silhouette, resolving
// ties towards the smaller k exactly as the sweep does.
func (s *SweepStats) Best() (k int, silhouette float64) {
	have := false
	for _, ks := range s.Ks {
		if !have || ks.Silhouette > silhouette {
			have = true
			k, silhouette = ks.K, ks.Silhouette
		}
	}
	return k, silhouette
}

// String renders the tree into a string (fmt.Stringer for logs).
func (s *RunStats) String() string {
	var b strings.Builder
	s.Render(&b)
	return strings.TrimRight(b.String(), "\n")
}

// fmtDur rounds a duration to a human scale: µs under 1ms, 10µs
// resolution above, 1ms resolution above a second.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	units := []string{"B", "KiB", "MiB", "GiB"}
	v := float64(n)
	u := 0
	for v >= 1024 && u < len(units)-1 {
		v /= 1024
		u++
	}
	if u == 0 {
		return fmt.Sprintf("%d%s", n, units[0])
	}
	return fmt.Sprintf("%.1f%s", v, units[u])
}

// fmtBytesSigned is fmtBytes with an explicit sign (heap deltas shrink
// when a GC ran mid-pipeline).
func fmtBytesSigned(n int64) string {
	if n < 0 {
		return "-" + fmtBytes(-n)
	}
	return "+" + fmtBytes(n)
}
