package obs

import (
	"sort"
	"sync"
	"time"
)

// PhaseTotal is the cumulative cost of one pipeline phase across many
// runs: how often it executed and how much wall time it consumed in
// total.
type PhaseTotal struct {
	Phase Phase         `json:"phase"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// AggregateSnapshot is a point-in-time copy of an Aggregate, safe to
// read, render or serialise without further locking.
type AggregateSnapshot struct {
	// Runs is the number of RunStats trees folded in.
	Runs int `json:"runs"`
	// Total is the summed wall time of all folded runs.
	Total time.Duration `json:"total_ns"`
	// Phases holds cumulative per-phase totals in pipeline order
	// (unknown phases follow, alphabetically).
	Phases []PhaseTotal `json:"phases,omitempty"`
}

// Aggregate folds many RunStats trees into cumulative counters — the
// long-running face of the subsystem: while a Recorder observes one run,
// an Aggregate accumulates a whole process lifetime of runs (the tdacd
// daemon feeds every finished job's stats into one and renders the
// totals on /metrics). All methods are safe for concurrent use; like the
// Recorder, a nil *Aggregate is the disabled subsystem and every method
// no-ops.
type Aggregate struct {
	mu     sync.Mutex
	runs   int
	total  time.Duration
	counts map[Phase]int
	durs   map[Phase]time.Duration
}

// NewAggregate returns an empty, enabled Aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		counts: make(map[Phase]int),
		durs:   make(map[Phase]time.Duration),
	}
}

// Add folds one finished run into the totals. A nil receiver or a nil
// tree is a no-op, so callers can pass a Result's Stats field without
// checking whether observation was on.
func (a *Aggregate) Add(s *RunStats) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	a.total += s.Total
	for _, p := range s.Phases {
		a.counts[p.Phase]++
		a.durs[p.Phase] += p.Duration
	}
}

// phaseOrder is the canonical pipeline order used to sort snapshots.
var phaseOrder = map[Phase]int{
	PhaseReference:      0,
	PhaseTruthVectors:   1,
	PhaseDistanceMatrix: 2,
	PhaseKSweep:         3,
	PhaseBaseRuns:       4,
	PhaseMerge:          5,
	PhaseDiscover:       6,
}

// Snapshot returns a consistent copy of the totals. A nil receiver
// returns a zero snapshot.
func (a *Aggregate) Snapshot() AggregateSnapshot {
	if a == nil {
		return AggregateSnapshot{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := AggregateSnapshot{Runs: a.runs, Total: a.total}
	for p, n := range a.counts {
		out.Phases = append(out.Phases, PhaseTotal{Phase: p, Count: n, Total: a.durs[p]})
	}
	sort.Slice(out.Phases, func(i, j int) bool {
		oi, iOK := phaseOrder[out.Phases[i].Phase]
		oj, jOK := phaseOrder[out.Phases[j].Phase]
		switch {
		case iOK && jOK:
			return oi < oj
		case iOK != jOK:
			return iOK // known pipeline phases first
		default:
			return out.Phases[i].Phase < out.Phases[j].Phase
		}
	})
	return out
}
