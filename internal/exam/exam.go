// Package exam simulates the paper's Exam dataset, which aggregates the
// anonymous results of admission examinations and cannot be redistributed
// for privacy reasons (§4.3). The simulator reproduces every published
// property: 248 students (sources) answering up to 124 questions
// (attributes) about one object (the exam) across 9 named domains;
// Math 1A and Physics mandatory; a forced choice between Chemistry 1 and
// Math 1B; five fully optional domains where wrong answers were penalised
// (hence only confident students answer them); and known correct answers.
//
// Two phenomena make the data non-trivial, mirroring real exams:
//
//   - a student's ability is drawn per domain, so every question of one
//     domain shares the student's reliability level while domains differ —
//     the structural correlation TD-AC targets;
//   - wrong answers concentrate on a few distractors per question (common
//     misconceptions), so the plurality answer of a hard question can be
//     wrong and reliability weighting matters.
//
// The semi-synthetic variants of Tables 6–7 are derived exactly as the
// paper describes: "for each unanswered question we have synthetically
// chosen a false answer, randomly in a range of false values of size equal
// to 25, 50, 100 or 1000" — enable Fill to replace every missing answer
// with uniform noise from the range. Small ranges make the noise collide
// into spurious pluralities; large ranges scatter it harmlessly, which is
// why the paper's accuracy grows with the range size.
package exam

import (
	"fmt"
	"math/rand"
	"strconv"

	"tdac/internal/truthdata"
)

// Domain describes one exam subject.
type Domain struct {
	Name      string
	Questions int
	// Kind is mandatory, choiceA/choiceB (mutually exclusive) or optional.
	Kind DomainKind
}

// DomainKind classifies how students cover a domain.
type DomainKind int

const (
	// Mandatory domains are attempted by everyone.
	Mandatory DomainKind = iota
	// ChoiceA and ChoiceB form the exclusive Chemistry 1 / Math 1B choice.
	ChoiceA
	// ChoiceB is the alternative branch of the choice.
	ChoiceB
	// Optional domains are attempted by a minority; because wrong answers
	// are penalised, mostly strong students answer, and only the
	// questions they are confident about.
	Optional
)

// Domains returns the paper's nine domains with question counts summing
// to 124, ordered so that the 32- and 62-attribute variants are prefixes.
func Domains() []Domain {
	return []Domain{
		{Name: "Math 1A", Questions: 16, Kind: Mandatory},
		{Name: "Physics", Questions: 16, Kind: Mandatory},
		{Name: "Chemistry 1", Questions: 15, Kind: ChoiceA},
		{Name: "Math 1B", Questions: 15, Kind: ChoiceB},
		{Name: "Electrical Engineering", Questions: 12, Kind: Optional},
		{Name: "Computer Science", Questions: 13, Kind: Optional},
		{Name: "Chemistry 2", Questions: 12, Kind: Optional},
		{Name: "Science of life", Questions: 12, Kind: Optional},
		{Name: "Math 2", Questions: 13, Kind: Optional},
	}
}

// Config parameterises one simulated Exam dataset.
type Config struct {
	// Attrs selects the variant: 32 (mandatory domains only, DCR≈81%),
	// 62 (plus the choice domains, DCR≈55%) or 124 (all domains,
	// DCR≈36%), matching Table 8. 0 means 124.
	Attrs int
	// Range is the size of the answer value space from which wrong
	// answers (and fill noise) are drawn (25, 50, 100 or 1000 in
	// Tables 6–7). Default 100.
	Range int
	// Fill builds the semi-synthetic variant: every unanswered
	// (student, question) pair receives a uniformly random false answer
	// from the range, exactly as §4.3 constructs Tables 6–7. The
	// resulting dataset has full coverage.
	Fill bool
	// Students is the number of sources. Default 248.
	Students int
	// Seed drives all randomness.
	Seed int64
}

// Name labels the dataset as in the paper's tables.
func (c Config) Name() string {
	attrs := c.Attrs
	if attrs == 0 {
		attrs = 124
	}
	if c.Fill {
		rng := c.Range
		if rng == 0 {
			rng = 100
		}
		return fmt.Sprintf("Exam %d (semi-synthetic, range %d)", attrs, rng)
	}
	return fmt.Sprintf("Exam %d", attrs)
}

// Coverage rates calibrated so the three variants land near the DCRs of
// Table 8 (81 / 55 / 36%).
const (
	mandatoryAnswerRate = 0.81
	choiceAnswerRate    = 0.54 // per chooser; the exclusive choice halves it
	optionalTakeRate    = 0.35
	optionalAnswerBase  = 0.68 // scaled by ability: confident students answer
)

// Difficulty and distractor model. Mandatory papers are sat by the whole
// population and are hard (the paper's Exam 32 accuracy is only ~0.66);
// elective papers are answered by self-selected specialists and are
// gentler.
const (
	mandatoryMaxDifficulty = 0.80
	choiceMaxDifficulty    = 0.70
	electiveMaxDifficulty  = 0.30
	distractor1Prob        = 0.35 // share of wrong answers hitting distractor 1
	distractor2Prob        = 0.15 // ... and distractor 2; rest is uniform noise

	mandatoryAbilityLo, mandatoryAbilityHi = 0.20, 0.85
	electiveAbilityLo, electiveAbilityHi   = 0.45, 0.95

	// valueSpace is the space real answers are drawn from, independent of
	// the Fill range: the underlying exam is the same dataset for every
	// range configuration, exactly as in the paper where only the
	// synthetic fill differs.
	valueSpace = 5000
)

// Generate builds the simulated dataset. Ground truth is complete: the
// correct answer to every question is known, as in the real Exam data.
func Generate(c Config) (*truthdata.Dataset, error) {
	if c.Students == 0 {
		c.Students = 248
	}
	if c.Range == 0 {
		c.Range = 100
	}
	if c.Range < 4 {
		return nil, fmt.Errorf("exam: range %d too small (need >=4 candidate answers)", c.Range)
	}
	domains := Domains()
	total := 0
	for _, d := range domains {
		total += d.Questions
	}
	switch c.Attrs {
	case 32, 62, 124:
	case 0:
		c.Attrs = total
	default:
		return nil, fmt.Errorf("exam: unsupported variant %d attributes (want 32, 62 or 124)", c.Attrs)
	}

	// rng drives the underlying exam (questions, abilities, answers) and
	// depends only on seed and variant; rngFill drives the synthetic fill
	// noise and additionally depends on the range, so the four range
	// configurations of Tables 6–7 share the same underlying exam.
	rng := rand.New(rand.NewSource(c.Seed + int64(c.Attrs)*31))
	rngFill := rand.New(rand.NewSource(c.Seed + int64(c.Attrs)*31 + int64(c.Range)*104729))
	b := truthdata.NewBuilder(c.Name())
	obj := b.Object("exam")

	type question struct {
		attr        truthdata.AttrID
		domain      int
		truth       string
		difficulty  float64
		distractors [2]string
	}
	var questions []question
	count := 0
	for di, d := range domains {
		var maxDiff float64
		switch d.Kind {
		case Mandatory:
			maxDiff = mandatoryMaxDifficulty
		case ChoiceA, ChoiceB:
			maxDiff = choiceMaxDifficulty
		default:
			maxDiff = electiveMaxDifficulty
		}
		for qi := 0; qi < d.Questions && count < c.Attrs; qi++ {
			attr := b.Attr(fmt.Sprintf("%s Q%d", d.Name, qi+1))
			q := question{
				attr:       attr,
				domain:     di,
				truth:      "a" + strconv.Itoa(rng.Intn(valueSpace)+1),
				difficulty: 0.10 + (maxDiff-0.10)*rng.Float64(),
			}
			for j := range q.distractors {
				for {
					v := "a" + strconv.Itoa(rng.Intn(valueSpace)+1)
					if v != q.truth && (j == 0 || v != q.distractors[0]) {
						q.distractors[j] = v
						break
					}
				}
			}
			b.TruthIDs(obj, attr, q.truth)
			questions = append(questions, q)
			count++
		}
		if count >= c.Attrs {
			break
		}
	}

	wrongAnswer := func(q *question) string {
		r := rng.Float64()
		switch {
		case r < distractor1Prob:
			return q.distractors[0]
		case r < distractor1Prob+distractor2Prob:
			return q.distractors[1]
		default:
			for {
				v := "a" + strconv.Itoa(rng.Intn(valueSpace)+1)
				if v != q.truth {
					return v
				}
			}
		}
	}

	for s := 0; s < c.Students; s++ {
		sid := b.Source(fmt.Sprintf("student-%03d", s+1))
		// Per-domain ability: the structural correlation.
		ability := make([]float64, len(domains))
		for di, d := range domains {
			if d.Kind == Mandatory {
				ability[di] = mandatoryAbilityLo + (mandatoryAbilityHi-mandatoryAbilityLo)*rng.Float64()
			} else {
				ability[di] = electiveAbilityLo + (electiveAbilityHi-electiveAbilityLo)*rng.Float64()
			}
		}
		choseA := rng.Intn(2) == 0
		takes := make([]bool, len(domains))
		for di, d := range domains {
			switch d.Kind {
			case Mandatory:
				takes[di] = true
			case ChoiceA:
				takes[di] = choseA
			case ChoiceB:
				takes[di] = !choseA
			case Optional:
				takes[di] = rng.Float64() < optionalTakeRate
			}
		}
		for i := range questions {
			q := &questions[i]
			answers := false
			if takes[q.domain] {
				var answerRate float64
				switch domains[q.domain].Kind {
				case Mandatory:
					answerRate = mandatoryAnswerRate
				case ChoiceA, ChoiceB:
					answerRate = choiceAnswerRate
				case Optional:
					// Penalised: answer rate grows with ability, so the
					// answering population self-selects for correctness.
					answerRate = optionalAnswerBase * ability[q.domain] * ability[q.domain] * 2
					if answerRate > 0.95 {
						answerRate = 0.95
					}
				}
				answers = rng.Float64() < answerRate
			}
			if !answers {
				if c.Fill {
					// Semi-synthetic construction of §4.3: a uniformly
					// random false answer from a pool of Range values
					// replaces the missing one. Small ranges make this
					// noise collide into spurious pluralities.
					v := "x" + strconv.Itoa(rngFill.Intn(c.Range)+1)
					b.ClaimIDs(sid, obj, q.attr, v)
				}
				continue
			}
			pCorrect := ability[q.domain] + 0.30 - q.difficulty
			if pCorrect < 0.05 {
				pCorrect = 0.05
			}
			if pCorrect > 0.98 {
				pCorrect = 0.98
			}
			answer := q.truth
			if rng.Float64() >= pCorrect {
				answer = wrongAnswer(q)
			}
			b.ClaimIDs(sid, obj, q.attr, answer)
		}
	}
	return b.Build()
}
