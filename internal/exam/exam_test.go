package exam

import (
	"strings"
	"testing"

	"tdac/internal/truthdata"
)

func TestDomainsSumTo124(t *testing.T) {
	total := 0
	mandatory, choice, optional := 0, 0, 0
	for _, d := range Domains() {
		total += d.Questions
		switch d.Kind {
		case Mandatory:
			mandatory++
		case ChoiceA, ChoiceB:
			choice++
		case Optional:
			optional++
		}
	}
	if total != 124 {
		t.Errorf("questions sum to %d, want 124", total)
	}
	if len(Domains()) != 9 {
		t.Errorf("%d domains, want 9", len(Domains()))
	}
	if mandatory != 2 || choice != 2 || optional != 5 {
		t.Errorf("domain kinds = %d/%d/%d, want 2/2/5", mandatory, choice, optional)
	}
}

func TestVariantsArePrefixes(t *testing.T) {
	// 32 = Math 1A + Physics; 62 adds the two choice domains.
	ds := Domains()
	if ds[0].Questions+ds[1].Questions != 32 {
		t.Errorf("mandatory questions = %d, want 32", ds[0].Questions+ds[1].Questions)
	}
	if ds[0].Questions+ds[1].Questions+ds[2].Questions+ds[3].Questions != 62 {
		t.Error("mandatory + choice != 62")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, attrs := range []int{32, 62, 124} {
		d, err := Generate(Config{Attrs: attrs, Seed: 1})
		if err != nil {
			t.Fatalf("attrs=%d: %v", attrs, err)
		}
		if d.NumAttrs() != attrs {
			t.Errorf("NumAttrs = %d, want %d", d.NumAttrs(), attrs)
		}
		if d.NumSources() != 248 {
			t.Errorf("NumSources = %d, want 248", d.NumSources())
		}
		if d.NumObjects() != 1 {
			t.Errorf("NumObjects = %d, want 1", d.NumObjects())
		}
		if len(d.Truth) != attrs {
			t.Errorf("truth entries = %d, want %d (complete ground truth)", len(d.Truth), attrs)
		}
	}
}

func TestGenerateDCRMatchesTable8(t *testing.T) {
	// Table 8: Exam 32 -> 81%, Exam 62 -> 55%, Exam 124 -> 36%.
	want := map[int]float64{32: 81, 62: 55, 124: 36}
	for attrs, dcr := range want {
		d, err := Generate(Config{Attrs: attrs, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		st := truthdata.ComputeStats(d)
		if st.DCR < dcr-6 || st.DCR > dcr+6 {
			t.Errorf("Exam %d DCR = %.1f, want %.0f±6", attrs, st.DCR, dcr)
		}
	}
}

func TestGenerateFillGivesFullCoverage(t *testing.T) {
	d, err := Generate(Config{Attrs: 62, Range: 25, Fill: true, Students: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.NumClaims(), 60*62; got != want {
		t.Errorf("filled claims = %d, want %d (every student answers everything)", got, want)
	}
	st := truthdata.ComputeStats(d)
	if st.DCR != 100 {
		t.Errorf("filled DCR = %v, want 100", st.DCR)
	}
}

func TestGenerateFillSharesUnderlyingExam(t *testing.T) {
	// The four range configurations must share the same real answers:
	// claims whose value is not fill noise ("x...") must coincide.
	d25, err := Generate(Config{Attrs: 62, Range: 25, Fill: true, Students: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d1000, err := Generate(Config{Attrs: 62, Range: 1000, Fill: true, Students: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	real25 := realClaims(d25)
	real1000 := realClaims(d1000)
	if len(real25) == 0 || len(real25) != len(real1000) {
		t.Fatalf("real claim counts differ: %d vs %d", len(real25), len(real1000))
	}
	for k, v := range real25 {
		if real1000[k] != v {
			t.Fatalf("real answer differs across ranges at %v", k)
		}
	}
	// Ground truth identical too.
	for cell, v := range d25.Truth {
		if d1000.Truth[cell] != v {
			t.Fatal("truth differs across ranges")
		}
	}
}

type claimKey struct {
	s truthdata.SourceID
	o truthdata.ObjectID
	a truthdata.AttrID
}

func realClaims(d *truthdata.Dataset) map[claimKey]string {
	out := map[claimKey]string{}
	for _, c := range d.Claims {
		if !strings.HasPrefix(c.Value, "x") {
			out[claimKey{c.Source, c.Object, c.Attr}] = c.Value
		}
	}
	return out
}

func TestGenerateFillNoiseRespectsRange(t *testing.T) {
	d, err := Generate(Config{Attrs: 32, Range: 25, Fill: true, Students: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, c := range d.Claims {
		if strings.HasPrefix(c.Value, "x") {
			distinct[c.Value] = true
		}
	}
	if len(distinct) == 0 || len(distinct) > 25 {
		t.Errorf("fill noise uses %d distinct values, want 1..25", len(distinct))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Attrs: 62, Seed: 7, Students: 50}
	d1, _ := Generate(cfg)
	d2, _ := Generate(cfg)
	if d1.NumClaims() != d2.NumClaims() {
		t.Fatal("claim counts differ")
	}
	for i := range d1.Claims {
		if d1.Claims[i] != d2.Claims[i] {
			t.Fatal("claims differ for identical configs")
		}
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	if _, err := Generate(Config{Attrs: 50}); err == nil {
		t.Error("accepted unsupported variant")
	}
	if _, err := Generate(Config{Attrs: 32, Range: 2}); err == nil {
		t.Error("accepted a degenerate range")
	}
}

func TestConfigName(t *testing.T) {
	if got := (Config{Attrs: 62}).Name(); got != "Exam 62" {
		t.Errorf("Name = %q", got)
	}
	if got := (Config{Attrs: 62, Range: 25, Fill: true}).Name(); !strings.Contains(got, "25") {
		t.Errorf("semi-synthetic Name = %q, should mention the range", got)
	}
	if got := (Config{}).Name(); !strings.Contains(got, "124") {
		t.Errorf("default Name = %q, want Exam 124", got)
	}
}

func TestMandatoryHarderThanOptional(t *testing.T) {
	// Self-selection: answered optional questions should be correct more
	// often than answered mandatory ones.
	d, err := Generate(Config{Attrs: 124, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	domains := Domains()
	// Attribute index ranges per domain kind.
	kindOf := make([]DomainKind, 0, 124)
	for _, dom := range domains {
		for q := 0; q < dom.Questions; q++ {
			kindOf = append(kindOf, dom.Kind)
		}
	}
	var mandOK, mandN, optOK, optN int
	for _, c := range d.Claims {
		truth := d.Truth[c.Cell()]
		right := c.Value == truth
		switch kindOf[c.Attr] {
		case Mandatory:
			mandN++
			if right {
				mandOK++
			}
		case Optional:
			optN++
			if right {
				optOK++
			}
		}
	}
	if mandN == 0 || optN == 0 {
		t.Fatal("missing claims for some domain kind")
	}
	mandAcc := float64(mandOK) / float64(mandN)
	optAcc := float64(optOK) / float64(optN)
	if optAcc <= mandAcc {
		t.Errorf("optional accuracy %v not above mandatory %v", optAcc, mandAcc)
	}
}
