// Package genpartition implements the brute-force baseline of Ba,
// Horincar, Senellart & Wu (WebDB 2015) that the paper calls
// AccuGenPartition: enumerate every set partition of the attribute set,
// score each one with a weighting function over the per-group source
// reliability levels estimated by the base algorithm, and keep the best.
//
// Running the base algorithm on every group of every partition would be
// wasteful — the same group recurs in many partitions — so runs are
// memoized per group: a 6-attribute set has 203 partitions but only 63
// distinct non-empty groups.
package genpartition

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"tdac/internal/algorithms"
	"tdac/internal/metrics"
	"tdac/internal/partition"
	"tdac/internal/truthdata"
)

// Weighting scores a candidate partition from its groups' runs.
type Weighting int

const (
	// Max scores a partition by the mean over groups of the best source
	// reliability in the group.
	Max Weighting = iota
	// Avg scores a partition by the mean over groups of the mean source
	// reliability in the group.
	Avg
	// Oracle scores a partition by the true accuracy of its merged
	// predictions, requiring ground truth — the upper bound of [2].
	Oracle
)

// String names the weighting as in the paper's tables.
func (w Weighting) String() string {
	switch w {
	case Max:
		return "Max"
	case Avg:
		return "Avg"
	case Oracle:
		return "Oracle"
	}
	return fmt.Sprintf("Weighting(%d)", int(w))
}

// GenPartition is the brute-force attribute-partitioning baseline.
type GenPartition struct {
	// Base is the algorithm run on each group (Accu in the paper, hence
	// the name AccuGenPartition).
	Base algorithms.Algorithm
	// Weighting selects the partition-scoring function.
	Weighting Weighting
}

// New returns the baseline over base with the given weighting.
func New(base algorithms.Algorithm, w Weighting) *GenPartition {
	return &GenPartition{Base: base, Weighting: w}
}

// Name implements algorithms.Algorithm, following the paper's
// "AccuGenPartition (Max)" notation.
func (g *GenPartition) Name() string {
	base := "Gen"
	if g.Base != nil {
		base = g.Base.Name()
	}
	return fmt.Sprintf("%sGenPartition (%s)", base, g.Weighting)
}

// Outcome reports the winning partition alongside the merged result.
type Outcome struct {
	*algorithms.Result
	// Partition is the best-scoring partition.
	Partition partition.Partition
	// Score is its weighting-function value.
	Score float64
	// PartitionsExplored counts the enumerated partitions (Bell(|A|)).
	PartitionsExplored int
	// GroupRuns counts the distinct base-algorithm executions after
	// memoization.
	GroupRuns int
}

// groupRun caches everything a weighting needs about one group.
type groupRun struct {
	truth     map[truthdata.Cell]string
	conf      map[truthdata.Cell]float64
	trust     []float64
	hasClaims []bool
	claims    int
	confusion metrics.Confusion
	cellOK    int // cells predicted correctly (for Oracle cell accuracy)
	cellAll   int
	iters     int
}

var errNeedTruth = errors.New("genpartition: Oracle weighting requires ground truth")

// Discover implements algorithms.Algorithm.
func (g *GenPartition) Discover(d *truthdata.Dataset) (*algorithms.Result, error) {
	out, err := g.Run(d)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// checkRunnable validates the (algorithm, weighting, dataset) triple
// shared by Run and ScorePartition.
func (g *GenPartition) checkRunnable(d *truthdata.Dataset) error {
	if g.Base == nil {
		return errors.New("genpartition: Base algorithm is required")
	}
	if len(d.Claims) == 0 {
		return algorithms.ErrEmptyDataset
	}
	if g.Weighting == Oracle && len(d.Truth) == 0 {
		return errNeedTruth
	}
	return nil
}

// evaluator memoizes per-group base runs over one dataset; the same
// group recurs in many partitions, so each distinct group runs once.
type evaluator struct {
	g     *GenPartition
	d     *truthdata.Dataset
	cache map[string]*groupRun
	runs  int
}

func (g *GenPartition) newEvaluator(d *truthdata.Dataset) *evaluator {
	return &evaluator{g: g, d: d, cache: make(map[string]*groupRun)}
}

func (e *evaluator) eval(group []truthdata.AttrID) (*groupRun, error) {
	key := groupKey(group)
	if gr, ok := e.cache[key]; ok {
		return gr, nil
	}
	d := e.d
	sub, backMap := d.Project(group)
	gr := &groupRun{claims: len(sub.Claims)}
	if len(sub.Claims) > 0 {
		res, err := e.g.Base.Discover(sub)
		if err != nil {
			return nil, fmt.Errorf("genpartition: base run on group %s: %w", key, err)
		}
		e.runs++
		gr.trust = res.Trust
		gr.iters = res.Iterations
		gr.hasClaims = make([]bool, sub.NumSources())
		for _, c := range sub.Claims {
			gr.hasClaims[c.Source] = true
		}
		gr.truth = make(map[truthdata.Cell]string, len(res.Truth))
		gr.conf = make(map[truthdata.Cell]float64, len(res.Confidence))
		for cell, v := range res.Truth {
			orig := truthdata.Cell{Object: cell.Object, Attr: backMap[cell.Attr]}
			gr.truth[orig] = v
			if c, ok := res.Confidence[cell]; ok {
				gr.conf[orig] = c
			}
		}
		if len(d.Truth) > 0 {
			rep := metrics.Evaluate(sub, res.Truth)
			gr.confusion = rep.Confusion
			gr.cellAll = rep.EvaluatedCells
			gr.cellOK = int(math.Round(rep.CellAccuracy * float64(rep.EvaluatedCells)))
		}
	}
	e.cache[key] = gr
	return gr, nil
}

// ScorePartition evaluates one candidate partition with g's weighting
// function — the same score Run uses to rank the enumerated partitions.
// It exists so external cross-checks (the verification harness's oracle
// invariant) can compare a heuristically chosen partition against the
// enumerated optimum on the exact same scale.
func (g *GenPartition) ScorePartition(d *truthdata.Dataset, p partition.Partition) (float64, error) {
	if err := g.checkRunnable(d); err != nil {
		return 0, err
	}
	if got, want := p.Size(), d.NumAttrs(); got != want {
		return 0, fmt.Errorf("genpartition: partition covers %d attrs, dataset has %d", got, want)
	}
	e := g.newEvaluator(d)
	groups := make([]*groupRun, 0, len(p))
	for _, grp := range p.Canonical() {
		gr, err := e.eval(grp)
		if err != nil {
			return 0, err
		}
		groups = append(groups, gr)
	}
	return g.score(groups), nil
}

// Run enumerates all partitions and returns the best one's merged result.
func (g *GenPartition) Run(d *truthdata.Dataset) (*Outcome, error) {
	start := time.Now()
	if err := g.checkRunnable(d); err != nil {
		return nil, err
	}
	nA := d.NumAttrs()
	e := g.newEvaluator(d)

	var (
		best      partition.Partition
		bestScore = math.Inf(-1)
		bestRuns  []*groupRun
		explored  int
		enumErr   error
	)
	err := partition.Enumerate(nA, func(p partition.Partition) bool {
		explored++
		groups := make([]*groupRun, len(p))
		for i, grp := range p {
			gr, err := e.eval(grp)
			if err != nil {
				enumErr = err
				return false
			}
			groups[i] = gr
		}
		score := g.score(groups)
		if score > bestScore {
			bestScore = score
			best = p.Canonical()
			bestRuns = groups
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if enumErr != nil {
		return nil, enumErr
	}
	if best == nil {
		return nil, errors.New("genpartition: no partition scored")
	}

	merged := merge(bestRuns, d.NumSources())
	merged.Algorithm = g.Name()
	merged.Runtime = time.Since(start)
	return &Outcome{
		Result:             merged,
		Partition:          best,
		Score:              bestScore,
		PartitionsExplored: explored,
		GroupRuns:          e.runs,
	}, nil
}

// score applies the weighting function to a partition's group runs.
func (g *GenPartition) score(groups []*groupRun) float64 {
	switch g.Weighting {
	case Max:
		var sum float64
		n := 0
		for _, gr := range groups {
			if gr.claims == 0 {
				continue
			}
			best := 0.0
			for s, t := range gr.trust {
				if gr.hasClaims[s] && t > best {
					best = t
				}
			}
			sum += best
			n++
		}
		if n == 0 {
			return math.Inf(-1)
		}
		return sum / float64(n)
	case Avg:
		var sum float64
		n := 0
		for _, gr := range groups {
			if gr.claims == 0 {
				continue
			}
			var t float64
			m := 0
			for s, tr := range gr.trust {
				if gr.hasClaims[s] {
					t += tr
					m++
				}
			}
			if m > 0 {
				sum += t / float64(m)
				n++
			}
		}
		if n == 0 {
			return math.Inf(-1)
		}
		return sum / float64(n)
	case Oracle:
		var conf metrics.Confusion
		for _, gr := range groups {
			conf.TP += gr.confusion.TP
			conf.FP += gr.confusion.FP
			conf.TN += gr.confusion.TN
			conf.FN += gr.confusion.FN
		}
		return conf.Accuracy()
	}
	return math.Inf(-1)
}

// merge concatenates the winning partition's partial results.
func merge(groups []*groupRun, nSources int) *algorithms.Result {
	res := &algorithms.Result{
		Truth:      make(map[truthdata.Cell]string),
		Confidence: make(map[truthdata.Cell]float64),
		Trust:      make([]float64, nSources),
		Converged:  true,
	}
	weights := make([]float64, nSources)
	for _, gr := range groups {
		for cell, v := range gr.truth {
			res.Truth[cell] = v
		}
		for cell, c := range gr.conf {
			res.Confidence[cell] = c
		}
		w := float64(gr.claims)
		for s, t := range gr.trust {
			res.Trust[s] += t * w
			weights[s] += w
		}
		if gr.iters > res.Iterations {
			res.Iterations = gr.iters
		}
	}
	for s := range res.Trust {
		if weights[s] > 0 {
			res.Trust[s] /= weights[s]
		}
	}
	return res
}

// groupKey canonicalises a group into a map key.
func groupKey(group []truthdata.AttrID) string {
	ids := append([]truthdata.AttrID(nil), group...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(id))
	}
	return b.String()
}
