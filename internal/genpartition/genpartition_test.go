package genpartition

import (
	"errors"
	"strings"
	"testing"

	"tdac/internal/algorithms"
	"tdac/internal/metrics"
	"tdac/internal/partition"
	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

func smallSynth(t testing.TB) *synth.Generated {
	t.Helper()
	g, err := synth.Generate(synth.DS2().Scaled(80))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWeightingString(t *testing.T) {
	if Max.String() != "Max" || Avg.String() != "Avg" || Oracle.String() != "Oracle" {
		t.Error("weighting names wrong")
	}
	if Weighting(9).String() == "" {
		t.Error("unknown weighting should still render")
	}
}

func TestName(t *testing.T) {
	g := New(algorithms.NewAccu(), Max)
	if got := g.Name(); got != "AccuGenPartition (Max)" {
		t.Errorf("Name = %q", got)
	}
	if got := New(nil, Avg).Name(); !strings.Contains(got, "Gen") {
		t.Errorf("baseless Name = %q", got)
	}
}

func TestRunRequiresBase(t *testing.T) {
	g := &GenPartition{}
	d := smallSynth(t).Dataset
	if _, err := g.Run(d); err == nil {
		t.Error("Run without base succeeded")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	d := &truthdata.Dataset{Name: "empty", Sources: []string{"s"}, Objects: []string{"o"}, Attrs: []string{"a"}}
	g := New(algorithms.NewMajorityVote(), Max)
	if _, err := g.Run(d); !errors.Is(err, algorithms.ErrEmptyDataset) {
		t.Errorf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestOracleRequiresTruth(t *testing.T) {
	d := smallSynth(t).Dataset.Clone()
	d.Truth = nil
	g := New(algorithms.NewMajorityVote(), Oracle)
	if _, err := g.Run(d); err == nil {
		t.Error("Oracle without ground truth succeeded")
	}
}

func TestExploresAllPartitions(t *testing.T) {
	gen := smallSynth(t)
	g := New(algorithms.NewMajorityVote(), Avg)
	out, err := g.Run(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if out.PartitionsExplored != 203 { // Bell(6)
		t.Errorf("explored %d partitions, want 203", out.PartitionsExplored)
	}
	// Memoization: at most 63 distinct non-empty groups of a 6-set.
	if out.GroupRuns > 63 {
		t.Errorf("ran the base algorithm %d times, memoization broken", out.GroupRuns)
	}
	if out.Partition.Size() != 6 {
		t.Errorf("winning partition covers %d attrs, want 6", out.Partition.Size())
	}
}

func TestOracleFindsBestPartition(t *testing.T) {
	gen := smallSynth(t)
	g := New(algorithms.NewAccu(), Oracle)
	out, err := g.Run(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// The Oracle's accuracy is an upper bound: no other weighting can
	// score a better-than-Oracle merged result.
	oracleAcc := metrics.Evaluate(gen.Dataset, out.Truth).Accuracy
	for _, w := range []Weighting{Max, Avg} {
		other, err := New(algorithms.NewAccu(), w).Run(gen.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		if acc := metrics.Evaluate(gen.Dataset, other.Truth).Accuracy; acc > oracleAcc+1e-9 {
			t.Errorf("%s scored %v above Oracle %v", w, acc, oracleAcc)
		}
	}
	if out.Score < 0.5 {
		t.Errorf("Oracle score = %v, suspiciously low", out.Score)
	}
}

func TestOracleBeatsUnpartitionedBase(t *testing.T) {
	gen := smallSynth(t)
	base := algorithms.NewAccu()
	baseRes, err := base.Discover(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(algorithms.NewAccu(), Oracle).Run(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := metrics.Evaluate(gen.Dataset, baseRes.Truth).Accuracy
	oracleAcc := metrics.Evaluate(gen.Dataset, out.Truth).Accuracy
	// The whole-set partition is among the candidates, so the Oracle can
	// never do worse than the plain base algorithm.
	if oracleAcc < baseAcc-1e-9 {
		t.Errorf("Oracle %v below plain base %v", oracleAcc, baseAcc)
	}
}

func TestMergedResultCoversAllCells(t *testing.T) {
	gen := smallSynth(t)
	out, err := New(algorithms.NewMajorityVote(), Max).Run(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Truth) != len(gen.Dataset.Cells()) {
		t.Errorf("merged truth has %d cells, want %d", len(out.Truth), len(gen.Dataset.Cells()))
	}
	if len(out.Trust) != gen.Dataset.NumSources() {
		t.Errorf("trust entries = %d", len(out.Trust))
	}
}

func TestDiscoverInterface(t *testing.T) {
	gen := smallSynth(t)
	var alg algorithms.Algorithm = New(algorithms.NewMajorityVote(), Avg)
	res, err := alg.Discover(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "MajorityVoteGenPartition (Avg)" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}

func TestGroupKey(t *testing.T) {
	k1 := groupKey([]truthdata.AttrID{3, 1, 2})
	k2 := groupKey([]truthdata.AttrID{2, 3, 1})
	if k1 != k2 {
		t.Errorf("groupKey not order-independent: %q vs %q", k1, k2)
	}
	if k1 != "1,2,3" {
		t.Errorf("groupKey = %q, want 1,2,3", k1)
	}
}

// failingAlgorithm injects base failures into the enumeration.
type failingAlgorithm struct{}

func (failingAlgorithm) Name() string { return "failing" }
func (failingAlgorithm) Discover(*truthdata.Dataset) (*algorithms.Result, error) {
	return nil, errors.New("injected failure")
}

func TestRunPropagatesBaseFailure(t *testing.T) {
	gen := smallSynth(t)
	g := New(failingAlgorithm{}, Max)
	if _, err := g.Run(gen.Dataset); err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("err = %v, want injected failure", err)
	}
}

// TestScorePartitionMatchesRun pins the external scoring hook against the
// enumeration: scoring the winning partition reproduces Outcome.Score
// exactly, no enumerated partition out-scores it, and malformed
// partitions are rejected.
func TestScorePartitionMatchesRun(t *testing.T) {
	gen := smallSynth(t)
	for _, w := range []Weighting{Max, Avg} {
		g := New(algorithms.NewMajorityVote(), w)
		out, err := g.Run(gen.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.ScorePartition(gen.Dataset, out.Partition)
		if err != nil {
			t.Fatal(err)
		}
		if got != out.Score {
			t.Errorf("%s: ScorePartition(winner) = %v, Run scored %v", w, got, out.Score)
		}
		// The planted partition is one of the enumerated candidates, so it
		// can never beat the enumerated optimum.
		planted, err := g.ScorePartition(gen.Dataset, gen.Planted)
		if err != nil {
			t.Fatal(err)
		}
		if planted > out.Score+1e-12 {
			t.Errorf("%s: planted partition scored %v above optimum %v", w, planted, out.Score)
		}
	}
}

func TestScorePartitionRejectsBadInput(t *testing.T) {
	gen := smallSynth(t)
	g := New(algorithms.NewMajorityVote(), Max)
	if _, err := g.ScorePartition(gen.Dataset, partition.Whole(3)); err == nil {
		t.Error("wrong-size partition accepted")
	}
	if _, err := (&GenPartition{}).ScorePartition(gen.Dataset, gen.Planted); err == nil {
		t.Error("baseless ScorePartition succeeded")
	}
}
