package similarity

import (
	"math"
	"testing"
)

func FuzzSimilarityInvariants(f *testing.F) {
	f.Add("", "")
	f.Add("abc", "abd")
	f.Add("100.5", "101")
	f.Add("Linus Torvalds", "linus torvalds")
	f.Add("\x00\xff", "日本語")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 256 || len(b) > 256 {
			return // keep the quadratic edit distance bounded
		}
		for name, fn := range map[string]Func{
			"exact": Exact, "levenshtein": Levenshtein,
			"numeric": Numeric, "jaccard": TokenJaccard,
		} {
			sab := fn(a, b)
			if math.IsNaN(sab) || sab < 0 || sab > 1 {
				t.Fatalf("%s(%q,%q) = %v out of [0,1]", name, a, b, sab)
			}
			if sba := fn(b, a); math.Abs(sab-sba) > 1e-9 {
				t.Fatalf("%s not symmetric on %q,%q: %v vs %v", name, a, b, sab, sba)
			}
			if self := fn(a, a); self != 1 {
				t.Fatalf("%s(%q,%q) = %v, want 1", name, a, a, self)
			}
		}
	})
}
