// Package similarity provides value-similarity functions in [0,1] used by
// truth discovery algorithms that let similar values support each other
// (TruthFinder's implication, AccuSim's similarity bonus).
package similarity

import (
	"math"
	"strconv"
	"strings"
)

// Func scores how similar two claimed values are; 1 means identical,
// 0 means unrelated. Implementations must be symmetric.
type Func func(a, b string) float64

// Exact returns 1 for equal strings and 0 otherwise. Using Exact as the
// similarity disables cross-value support entirely.
func Exact(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// Levenshtein returns 1 - editDistance/maxLen, a normalised string edit
// similarity. Empty-vs-empty counts as identical.
func Levenshtein(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	// Two-row dynamic program; values are small so int is fine.
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(prev[lb])/float64(maxLen)
}

// Numeric treats both values as numbers and returns exp(-|a-b| / scale)
// where scale adapts to the magnitude of the values (10% of the larger
// absolute value, floored at 1). Non-numeric inputs fall back to
// Levenshtein. This matches how truth discovery systems compare prices,
// years or counts: 1991 vs 1992 is close, 1991 vs 1830 is not.
func Numeric(a, b string) float64 {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	// ParseFloat also accepts "NaN" and "Inf"; neither is a meaningful
	// magnitude and both poison the exp formula below (NaN result), so
	// non-finite values take the string fallback too.
	if errA != nil || errB != nil ||
		math.IsNaN(fa) || math.IsInf(fa, 0) || math.IsNaN(fb) || math.IsInf(fb, 0) {
		return Levenshtein(a, b)
	}
	if fa == fb {
		return 1
	}
	scale := 0.1 * math.Max(math.Abs(fa), math.Abs(fb))
	if scale < 1 {
		scale = 1
	}
	return math.Exp(-math.Abs(fa-fb) / scale)
}

// TokenJaccard tokenises on whitespace (lower-cased) and returns the
// Jaccard index of the token sets. Useful for names and titles.
func TokenJaccard(a, b string) float64 {
	ta := tokens(a)
	tb := tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for t := range ta {
		if _, ok := tb[t]; ok {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func tokens(s string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, t := range strings.Fields(strings.ToLower(s)) {
		out[t] = struct{}{}
	}
	return out
}

// ByName resolves a similarity function from its registry name; the bool
// reports whether the name is known. Names: "exact", "levenshtein",
// "numeric", "jaccard".
func ByName(name string) (Func, bool) {
	switch strings.ToLower(name) {
	case "exact":
		return Exact, true
	case "levenshtein":
		return Levenshtein, true
	case "numeric":
		return Numeric, true
	case "jaccard":
		return TokenJaccard, true
	}
	return nil, false
}
