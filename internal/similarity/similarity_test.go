package similarity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExact(t *testing.T) {
	if Exact("a", "a") != 1 {
		t.Error("Exact on equal strings != 1")
	}
	if Exact("a", "b") != 0 {
		t.Error("Exact on distinct strings != 0")
	}
	if Exact("", "") != 1 {
		t.Error("Exact on empty strings != 1")
	}
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 1},
		{"abc", "abd", 1 - 1.0/3},
		{"kitten", "sitting", 1 - 3.0/7},
		{"", "abc", 0},
		{"abc", "", 0},
		{"a", "b", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); !close(got, c.want) {
			t.Errorf("Levenshtein(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestNumericCloseValues(t *testing.T) {
	if got := Numeric("100", "100"); got != 1 {
		t.Errorf("Numeric(100,100) = %v, want 1", got)
	}
	near := Numeric("100", "101")
	far := Numeric("100", "200")
	if near <= far {
		t.Errorf("Numeric should decay with distance: near=%v far=%v", near, far)
	}
	if near < 0.8 {
		t.Errorf("Numeric(100,101) = %v, want close to 1", near)
	}
}

func TestNumericFallsBackToLevenshtein(t *testing.T) {
	if got, want := Numeric("abc", "abd"), Levenshtein("abc", "abd"); !close(got, want) {
		t.Errorf("Numeric non-numeric fallback = %v, want %v", got, want)
	}
}

// TestNumericNonFiniteFallsBack pins the fuzz-found NaN escape:
// ParseFloat accepts "NaN"/"Inf" spellings, which must take the string
// fallback instead of poisoning the exp formula (Numeric("NAN","0")
// used to return NaN, outside the documented [0,1]).
func TestNumericNonFiniteFallsBack(t *testing.T) {
	for _, tc := range [][2]string{
		{"NAN", "0"}, {"nan", "nan"}, {"Inf", "0"}, {"-Inf", "+Inf"}, {"1", "Infinity"},
	} {
		got := Numeric(tc[0], tc[1])
		if got != Levenshtein(tc[0], tc[1]) {
			t.Errorf("Numeric(%q,%q) = %v, want Levenshtein fallback %v",
				tc[0], tc[1], got, Levenshtein(tc[0], tc[1]))
		}
		if got < 0 || got > 1 {
			t.Errorf("Numeric(%q,%q) = %v out of [0,1]", tc[0], tc[1], got)
		}
	}
}

func TestNumericSmallMagnitudes(t *testing.T) {
	// Scale floors at 1 so tiny numbers do not blow up the exponent.
	got := Numeric("0.1", "0.2")
	if got <= 0 || got >= 1 {
		t.Errorf("Numeric(0.1,0.2) = %v, want in (0,1)", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("linus torvalds", "Linus Torvalds"); got != 1 {
		t.Errorf("case-insensitive identical = %v, want 1", got)
	}
	if got := TokenJaccard("linus torvalds", "torvalds"); !close(got, 0.5) {
		t.Errorf("half overlap = %v, want 0.5", got)
	}
	if got := TokenJaccard("a b", "c d"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := TokenJaccard("", ""); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
	if got := TokenJaccard("a", ""); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"exact", "levenshtein", "numeric", "jaccard", "Exact", "NUMERIC"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

// Properties every similarity must satisfy: range [0,1], symmetry, and
// self-similarity 1.
func TestSimilarityProperties(t *testing.T) {
	funcs := map[string]Func{
		"exact": Exact, "levenshtein": Levenshtein,
		"numeric": Numeric, "jaccard": TokenJaccard,
	}
	rng := rand.New(rand.NewSource(5))
	randWord := func() string {
		n := rng.Intn(8)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte('0' + rng.Intn(42))
		}
		return string(buf)
	}
	for name, fn := range funcs {
		t.Run(name, func(t *testing.T) {
			f := func(_ int) bool {
				a, b := randWord(), randWord()
				sab, sba := fn(a, b), fn(b, a)
				if sab < 0 || sab > 1 {
					return false
				}
				if !close(sab, sba) {
					return false
				}
				return fn(a, a) == 1
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}
