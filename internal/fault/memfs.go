package fault

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Config schedules Mem's deterministic failure injection. The zero value
// injects nothing: Mem behaves as a reliable in-memory disk.
type Config struct {
	// Seed drives every random choice (torn-write lengths, partial-sync
	// lengths) so a failing schedule replays exactly.
	Seed int64
	// CrashAfterOps crashes the filesystem during its Nth mutating
	// operation (1-based; writes, syncs, creates, renames, removes all
	// count). 0 never crashes.
	CrashAfterOps int
	// CrashAt crashes the filesystem when the named crash point (see
	// Point) is hit for the CrashAtHit'th time.
	CrashAt string
	// CrashAtHit is the 1-based hit count for CrashAt (default 1).
	CrashAtHit int
	// ShortWriteEvery makes every Nth write a torn write: only a seeded
	// prefix lands, and the write reports ErrInjectedWrite. 0 disables.
	ShortWriteEvery int
	// SyncErrEvery makes every Nth fsync fail with ErrInjectedSync,
	// leaving the file's unsynced tail unsynced. 0 disables.
	SyncErrEvery int
	// DiskBytes is the total write budget; writes beyond it land
	// partially and report ErrNoSpace (ENOSPC). 0 means unlimited.
	DiskBytes int64
}

// Mem is an in-memory FS with deterministic fault injection and crash
// simulation. It distinguishes synced bytes (durable) from pending bytes
// (written but not fsynced): a crash keeps all synced data plus a
// seeded-random prefix of each pending tail — exactly the torn-write
// outcomes a power loss produces — and Restart exposes that durable
// image as a fresh filesystem. Safe for concurrent use.
type Mem struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int
	writes  int
	syncs   int
	pointN  int
	written int64
	crashed bool
}

type memFile struct {
	synced  []byte
	pending []byte
}

// NewMem returns an empty Mem driven by cfg.
func NewMem(cfg Config) *Mem {
	if cfg.CrashAtHit <= 0 {
		cfg.CrashAtHit = 1
	}
	return &Mem{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true, "/": true},
	}
}

// Crashed reports whether the simulated process has died.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Ops returns the number of mutating operations performed so far, which
// crash matrices use to spread CrashAfterOps schedules over a workload.
func (m *Mem) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Restart returns the durable post-crash image as a fresh filesystem
// driven by cfg: every file holds its synced bytes (a crash has already
// folded torn prefixes into them). Restarting a filesystem that never
// crashed first applies a crash, so unsynced data is lost either way —
// Restart is power loss, not a clean unmount.
func (m *Mem) Restart(cfg Config) *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.crashed {
		m.crashLocked()
	}
	next := NewMem(cfg)
	for path, f := range m.files {
		next.files[path] = &memFile{synced: append([]byte(nil), f.synced...)}
	}
	for d := range m.dirs {
		next.dirs[d] = true
	}
	return next
}

// crashLocked transitions to the crashed state: for every file, a
// seeded-random prefix of the pending tail becomes durable (the blocks
// the OS happened to flush) and the rest is lost.
func (m *Mem) crashLocked() {
	m.crashed = true
	paths := make([]string, 0, len(m.files))
	for p := range m.files {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic rng consumption order
	for _, p := range paths {
		f := m.files[p]
		if len(f.pending) > 0 {
			keep := m.rng.Intn(len(f.pending) + 1)
			f.synced = append(f.synced, f.pending[:keep]...)
		}
		f.pending = nil
	}
}

// step counts one mutating operation and crashes mid-operation when the
// schedule says so. It returns true when the operation must abort with
// ErrCrashed (the partial effect, if any, was applied by the caller
// before calling step or is applied by crashLocked's torn tails).
func (m *Mem) step() bool {
	if m.crashed {
		return true
	}
	m.ops++
	if m.cfg.CrashAfterOps > 0 && m.ops >= m.cfg.CrashAfterOps {
		m.crashLocked()
		return true
	}
	return false
}

// hitPoint implements the named crash points honored by Point.
func (m *Mem) hitPoint(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed || m.cfg.CrashAt == "" || name != m.cfg.CrashAt {
		return
	}
	m.pointN++
	if m.pointN >= m.cfg.CrashAtHit {
		m.crashLocked()
	}
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return ErrCrashed
	}
	for d := filepath.Clean(dir); ; d = filepath.Dir(d) {
		m.dirs[d] = true
		if d == "." || d == "/" || d == filepath.Dir(d) {
			break
		}
	}
	return nil
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return nil, ErrCrashed
	}
	if !m.dirs[filepath.Dir(filepath.Clean(name))] {
		return nil, &os.PathError{Op: "create", Path: name, Err: os.ErrNotExist}
	}
	m.files[filepath.Clean(name)] = &memFile{}
	return &memHandle{fs: m, path: filepath.Clean(name)}, nil
}

// OpenAppend implements FS. Opening a file mutates nothing, so it does
// not count as an op for crash schedules; writes through the handle
// join the file's pending tail exactly as after Create.
func (m *Mem) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, path: name}, nil
}

// ReadFile implements FS: the live view (synced plus pending), which is
// what the still-running process observes.
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, 0, len(f.synced)+len(f.pending))
	out = append(out, f.synced...)
	return append(out, f.pending...), nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	seen := make(map[string]bool)
	for p := range m.files {
		if filepath.Dir(p) == dir {
			seen[filepath.Base(p)] = true
		}
	}
	for d := range m.dirs {
		if d != dir && filepath.Dir(d) == dir {
			seen[filepath.Base(d)] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS. The rename itself is atomic; a crash scheduled
// on it happens before the swap, so recovery sees the old name.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return ErrCrashed
	}
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return ErrCrashed
	}
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// SyncDir implements FS. Mem models directory operations (create,
// rename, remove) as immediately durable, so this only counts as an op
// and honors crash schedules.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return ErrCrashed
	}
	if !m.dirs[filepath.Clean(dir)] {
		return &os.PathError{Op: "syncdir", Path: dir, Err: os.ErrNotExist}
	}
	return nil
}

// SyncedLen returns the durable byte count of name (testing aid).
func (m *Mem) SyncedLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[filepath.Clean(name)]; ok {
		return len(f.synced)
	}
	return 0
}

// PendingLen returns the unsynced byte count of name (testing aid).
func (m *Mem) PendingLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[filepath.Clean(name)]; ok {
		return len(f.pending)
	}
	return 0
}

// memHandle is an open append-only file on a Mem.
type memHandle struct {
	fs     *Mem
	path   string
	closed bool
}

// Write appends to the file's pending (unsynced) tail, applying the
// scheduled injections: op-count crashes tear this very write, short
// writes keep a seeded prefix, and the disk budget enforces ENOSPC.
func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	f, ok := m.files[h.path]
	if !ok {
		return 0, &os.PathError{Op: "write", Path: h.path, Err: os.ErrNotExist}
	}
	m.writes++

	n := len(p)
	var werr error
	if m.cfg.DiskBytes > 0 && m.written+int64(n) > m.cfg.DiskBytes {
		if room := m.cfg.DiskBytes - m.written; room > 0 {
			n = int(room)
		} else {
			n = 0
		}
		werr = fmt.Errorf("write %s: %w", h.path, ErrNoSpace)
	} else if m.cfg.ShortWriteEvery > 0 && m.writes%m.cfg.ShortWriteEvery == 0 {
		n = m.rng.Intn(len(p)) // strictly short
		werr = fmt.Errorf("write %s: %w", h.path, ErrInjectedWrite)
	}

	crash := false
	if !m.crashed {
		m.ops++
		if m.cfg.CrashAfterOps > 0 && m.ops >= m.cfg.CrashAfterOps {
			// Crash mid-write: a seeded prefix of this write joins the
			// pending tail, then the power goes out.
			n = m.rng.Intn(n + 1)
			crash = true
		}
	}
	f.pending = append(f.pending, p[:n]...)
	m.written += int64(n)
	if crash {
		m.crashLocked()
		return n, ErrCrashed
	}
	return n, werr
}

// Sync moves the pending tail into the durable bytes. A crash scheduled
// on this op makes the sync partial: only a seeded prefix of the tail
// became durable before the power went out. An injected sync error
// leaves the tail entirely unsynced.
func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if h.closed {
		return os.ErrClosed
	}
	f, ok := m.files[h.path]
	if !ok {
		return &os.PathError{Op: "sync", Path: h.path, Err: os.ErrNotExist}
	}
	m.syncs++
	if m.cfg.SyncErrEvery > 0 && m.syncs%m.cfg.SyncErrEvery == 0 {
		return fmt.Errorf("sync %s: %w", h.path, ErrInjectedSync)
	}
	m.ops++
	if m.cfg.CrashAfterOps > 0 && m.ops >= m.cfg.CrashAfterOps {
		keep := m.rng.Intn(len(f.pending) + 1)
		f.synced = append(f.synced, f.pending[:keep]...)
		f.pending = nil
		m.crashLocked()
		return ErrCrashed
	}
	f.synced = append(f.synced, f.pending...)
	f.pending = nil
	return nil
}

// Close implements File. Pending bytes stay pending: data written but
// never fsynced is still lost in a crash, exactly like a real page
// cache.
func (h *memHandle) Close() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

// FrozenClock is a Clock pinned to a settable instant, for testing
// interval fsync policies deterministically.
type FrozenClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFrozenClock starts a frozen clock at t.
func NewFrozenClock(t time.Time) *FrozenClock {
	return &FrozenClock{now: t}
}

// Now implements Clock.
func (c *FrozenClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *FrozenClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
