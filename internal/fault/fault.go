// Package fault is the filesystem and clock seam the durability layer is
// built against. Production code uses the OS implementation; tests swap
// in Mem, an in-memory filesystem with deterministic (seeded) injection
// of the failures a real deployment sees — short writes, fsync errors,
// ENOSPC, and process crashes at named or counted points — plus a
// Restart that yields exactly the bytes a machine would find on disk
// after power loss (synced data plus a torn prefix of unsynced tails).
// See DESIGN.md §10 for how the WAL's crash matrix drives this.
package fault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Injected failure sentinels. Mem wraps them so errors.Is works through
// the WAL's error chains.
var (
	// ErrNoSpace models ENOSPC: the disk budget is exhausted.
	ErrNoSpace = errors.New("no space left on device")
	// ErrInjectedSync is a scheduled fsync failure.
	ErrInjectedSync = errors.New("injected fsync error")
	// ErrInjectedWrite is a scheduled short write.
	ErrInjectedWrite = errors.New("injected short write")
	// ErrCrashed is returned by every operation after a simulated crash:
	// the process is "dead" and nothing further reaches disk.
	ErrCrashed = errors.New("filesystem crashed")
)

// File is the subset of *os.File the write-ahead log needs: append-only
// writes, durability, and close.
type File interface {
	io.Writer
	// Sync flushes buffered writes to durable storage.
	Sync() error
	io.Closer
}

// FS is the filesystem seam. All paths are slash-separated and relative
// to whatever root the caller chose; implementations must be safe for
// concurrent use.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content
	// (O_WRONLY|O_CREATE|O_TRUNC).
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending (O_WRONLY|O_APPEND):
	// how the WAL adopts a recovered tail segment and continues it.
	OpenAppend(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the sorted base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs a directory so that renames and creates within it
	// are durable.
	SyncDir(dir string) error
}

// Clock abstracts time.Now for interval-fsync policies and tests.
type Clock interface {
	Now() time.Time
}

// crasher is implemented by filesystems that honor named crash points;
// see Point.
type crasher interface {
	hitPoint(name string)
}

// Point marks a named crash point in durability-critical code (e.g.
// "wal.compact.rename"). On the real filesystem it is free; on a Mem
// configured to crash there, the filesystem transitions to its crashed
// state so every subsequent operation fails with ErrCrashed.
func Point(fsys FS, name string) {
	if c, ok := fsys.(crasher); ok {
		c.hitPoint(name)
	}
}

// OS is the production FS backed by the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS: open the directory and fsync it, which is how
// POSIX makes renames and creates durable.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// SystemClock is the production Clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }
