package fault

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) {
	t.Helper()
	if n, err := f.Write(p); err != nil || n != len(p) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
}

func TestMemSyncSeparatesDurableFromPending(t *testing.T) {
	m := NewMem(Config{})
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello "))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("world"))
	if got, want := m.SyncedLen("d/a"), 6; got != want {
		t.Fatalf("synced = %d, want %d", got, want)
	}
	if got, want := m.PendingLen("d/a"), 5; got != want {
		t.Fatalf("pending = %d, want %d", got, want)
	}
	// The live view sees everything.
	data, err := m.ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("live view = %q", data)
	}
	// A restart (power loss) keeps the synced prefix plus at most the
	// pending tail's torn prefix.
	next := m.Restart(Config{})
	data, err = next.ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix([]byte("hello world"), data) || len(data) < 6 {
		t.Fatalf("post-crash content %q is not a synced-covering prefix", data)
	}
}

func TestMemRestartIsDeterministicPerSeed(t *testing.T) {
	image := func(seed int64) []byte {
		m := NewMem(Config{Seed: seed})
		_ = m.MkdirAll("d")
		f, _ := m.Create("d/a")
		writeAll(t, f, []byte("0123456789"))
		data, err := m.Restart(Config{}).ReadFile("d/a")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(image(7), image(7)) {
		t.Fatal("same seed produced different torn tails")
	}
}

func TestMemCrashAfterOps(t *testing.T) {
	// Crash during the 3rd mutating op: mkdir(1), create(2), write(3).
	m := NewMem(Config{Seed: 1, CrashAfterOps: 3})
	_ = m.MkdirAll("d")
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write err = %v, want ErrCrashed", err)
	}
	if !m.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := m.Create("d/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err = %v", err)
	}
	data, err := m.Restart(Config{}).ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix([]byte("abc"), data) {
		t.Fatalf("torn write %q is not a prefix of the attempt", data)
	}
}

func TestMemNamedCrashPoint(t *testing.T) {
	m := NewMem(Config{CrashAt: "wal.test.point", CrashAtHit: 2})
	Point(m, "wal.other")
	Point(m, "wal.test.point")
	if m.Crashed() {
		t.Fatal("crashed on first hit, want second")
	}
	Point(m, "wal.test.point")
	if !m.Crashed() {
		t.Fatal("did not crash on second hit")
	}
	// Point on the real FS is free.
	Point(OS{}, "wal.test.point")
}

func TestMemShortWriteInjection(t *testing.T) {
	m := NewMem(Config{Seed: 3, ShortWriteEvery: 2})
	_ = m.MkdirAll("d")
	f, _ := m.Create("d/a")
	writeAll(t, f, []byte("full"))
	n, err := f.Write([]byte("torn-write"))
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err = %v, want ErrInjectedWrite", err)
	}
	if n >= len("torn-write") {
		t.Fatalf("short write landed %d bytes, want fewer than %d", n, len("torn-write"))
	}
}

func TestMemSyncErrorInjection(t *testing.T) {
	m := NewMem(Config{SyncErrEvery: 1})
	_ = m.MkdirAll("d")
	f, _ := m.Create("d/a")
	writeAll(t, f, []byte("abc"))
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync err = %v, want ErrInjectedSync", err)
	}
	if m.SyncedLen("d/a") != 0 {
		t.Fatal("failed sync still made bytes durable")
	}
}

func TestMemENOSPC(t *testing.T) {
	m := NewMem(Config{DiskBytes: 5})
	_ = m.MkdirAll("d")
	f, _ := m.Create("d/a")
	writeAll(t, f, []byte("abc"))
	n, err := f.Write([]byte("defg"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if n != 2 {
		t.Fatalf("landed %d bytes past the budget, want 2", n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace on exhausted budget", err)
	}
}

func TestMemDirOperations(t *testing.T) {
	m := NewMem(Config{})
	if err := m.MkdirAll("a/b"); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Create("a/b/x")
	writeAll(t, f, []byte("1"))
	_ = f.Sync()
	_ = f.Close()
	if err := m.Rename("a/b/x", "a/b/y"); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "y" {
		t.Fatalf("ReadDir = %v, want [y]", names)
	}
	if _, err := m.ReadFile("a/b/x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old name still readable: %v", err)
	}
	if err := m.Remove("a/b/y"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadDir("a/missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := fsys.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create(dir + "/sub/f.tmp")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(dir+"/sub/f.tmp", dir+"/sub/f"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(dir + "/sub/f")
	if err != nil || string(data) != "data" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	names, err := fsys.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := fsys.Remove(dir + "/sub/f"); err != nil {
		t.Fatal(err)
	}
}
