package paper

import "testing"

func TestTable4Complete(t *testing.T) {
	// Every dataset must list the five standard algorithms and the three
	// AccuGenPartition weightings.
	required := []string{
		"MajorityVote", "TruthFinder", "Depen", "Accu", "AccuSim",
		"AccuGenPartition (Max)", "AccuGenPartition (Avg)", "AccuGenPartition (Oracle)",
	}
	for _, ds := range []string{"DS1", "DS2", "DS3"} {
		rows, ok := Table4[ds]
		if !ok {
			t.Fatalf("Table4 missing %s", ds)
		}
		for _, alg := range required {
			if _, ok := rows[alg]; !ok {
				t.Errorf("Table4[%s] missing %s", ds, alg)
			}
		}
	}
	// The printed paper includes TD-AC rows for DS1 and DS3.
	if _, ok := Table4["DS1"]["TD-AC (F=Accu)"]; !ok {
		t.Error("Table4[DS1] missing TD-AC row")
	}
	if _, ok := Table4["DS3"]["TD-AC (F=Accu)"]; !ok {
		t.Error("Table4[DS3] missing TD-AC row")
	}
}

func TestMetricsInRange(t *testing.T) {
	for ds, rows := range Table4 {
		for alg, m := range rows {
			for name, v := range map[string]float64{
				"precision": m.Precision, "recall": m.Recall,
				"accuracy": m.Accuracy, "f1": m.F1,
			} {
				if v < 0 || v > 1 {
					t.Errorf("Table4[%s][%s] %s = %v out of [0,1]", ds, alg, name, v)
				}
			}
			if m.TimeSeconds < 0 {
				t.Errorf("Table4[%s][%s] negative time", ds, alg)
			}
		}
	}
}

func TestSemiSynthShape(t *testing.T) {
	for _, attrs := range []int{62, 124} {
		byRange, ok := SemiSynth[attrs]
		if !ok {
			t.Fatalf("SemiSynth missing %d attrs", attrs)
		}
		for _, rng := range []int{25, 50, 100, 1000} {
			rows, ok := byRange[rng]
			if !ok {
				t.Fatalf("SemiSynth[%d] missing range %d", attrs, rng)
			}
			for _, alg := range []string{"Accu", "TD-AC (F=Accu)", "TruthFinder", "TD-AC (F=TruthFinder)"} {
				v, ok := rows[alg]
				if !ok {
					t.Errorf("SemiSynth[%d][%d] missing %s", attrs, rng, alg)
				}
				if v < 0 || v > 1 {
					t.Errorf("SemiSynth[%d][%d][%s] = %v", attrs, rng, alg, v)
				}
			}
		}
	}
}

func TestPaperRangeTrendHolds(t *testing.T) {
	// Sanity-check the transcription itself: the paper's own numbers
	// must exhibit the range trend the reproduction asserts.
	for _, attrs := range []int{62, 124} {
		for _, alg := range []string{"Accu", "TruthFinder"} {
			lo := SemiSynth[attrs][25][alg]
			hi := SemiSynth[attrs][1000][alg]
			if hi < lo {
				t.Errorf("paper's own %d-attr %s accuracy decreases with range: %v -> %v",
					attrs, alg, lo, hi)
			}
		}
	}
}

func TestTable8And9Consistent(t *testing.T) {
	if len(Table8) != 5 || len(Table9) != 5 {
		t.Fatalf("Table8/9 sizes = %d/%d, want 5/5", len(Table8), len(Table9))
	}
	for label := range Table8 {
		if _, ok := Table9[label]; !ok {
			t.Errorf("Table9 missing %s", label)
		}
	}
	for _, label := range append(append([]string{}, HighDCRDatasets...), LowDCRDatasets...) {
		if _, ok := Table8[label]; !ok {
			t.Errorf("DCR split references unknown dataset %s", label)
		}
	}
	// The DCR split must be consistent with the published DCRs.
	for _, label := range HighDCRDatasets {
		if Table8[label].DCR < 66 {
			t.Errorf("%s listed as high-DCR but DCR = %v", label, Table8[label].DCR)
		}
	}
	for _, label := range LowDCRDatasets {
		if Table8[label].DCR > 55 {
			t.Errorf("%s listed as low-DCR but DCR = %v", label, Table8[label].DCR)
		}
	}
}

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" {
			t.Errorf("claim %+v incomplete", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) != 9 {
		t.Errorf("%d claims, want 9", len(seen))
	}
}
