// Package paper records the numbers published in Tossou & Ba's EDBT 2021
// paper as structured data, together with the qualitative claims its
// Section 4.5 draws from them. The report tool compares this package
// against fresh runs of the repository's implementations: absolute
// numbers are not expected to match (the datasets are simulated and the
// algorithms re-implemented), but every qualitative claim is asserted as
// a shape check.
package paper

// Metrics is one row of a published performance table.
type Metrics struct {
	Precision, Recall, Accuracy, F1 float64
	// TimeSeconds is the paper's wall time (Python on an i5 laptop);
	// only relative order is meaningful.
	TimeSeconds float64
	Iterations  int
}

// Table4 holds the published synthetic results, keyed by dataset then
// algorithm, with the paper's row labels.
var Table4 = map[string]map[string]Metrics{
	"DS1": {
		"MajorityVote":              {0.602, 0.667, 0.806, 0.633, 75, 1},
		"TruthFinder":               {0.565, 0.624, 0.787, 0.595, 1261, 3},
		"Depen":                     {0.553, 0.611, 0.778, 0.580, 1492, 3},
		"Accu":                      {0.660, 0.712, 0.838, 0.689, 6495, 9},
		"AccuSim":                   {0.663, 0.705, 0.836, 0.683, 5580, 11},
		"AccuGenPartition (Max)":    {0.691, 0.724, 0.849, 0.707, 757230, 0},
		"AccuGenPartition (Avg)":    {0.682, 0.725, 0.846, 0.703, 757230, 0},
		"AccuGenPartition (Oracle)": {0.997, 0.998, 0.999, 0.998, 757230, 0},
		"TD-AC (F=Accu)":            {0.853, 0.870, 0.930, 0.861, 3410, 1},
	},
	"DS2": {
		"MajorityVote":              {0.741, 0.834, 0.884, 0.785, 99, 1},
		"TruthFinder":               {0.736, 0.819, 0.880, 0.775, 2276, 3},
		"Depen":                     {0.735, 0.828, 0.881, 0.779, 1459, 3},
		"Accu":                      {0.659, 0.663, 0.828, 0.661, 11263, 18},
		"AccuSim":                   {0.467, 0.388, 0.734, 0.424, 9996, 20},
		"AccuGenPartition (Max)":    {0.738, 0.810, 0.879, 0.773, 861697, 0},
		"AccuGenPartition (Avg)":    {0.867, 0.904, 0.940, 0.885, 861697, 0},
		"AccuGenPartition (Oracle)": {0.985, 0.992, 0.994, 0.989, 861697, 0},
	},
	"DS3": {
		"MajorityVote":              {0.847, 0.891, 0.918, 0.869, 112, 1},
		"TruthFinder":               {0.838, 0.875, 0.910, 0.856, 2762, 3},
		"Depen":                     {0.833, 0.876, 0.909, 0.854, 1732, 3},
		"Accu":                      {0.873, 0.918, 0.934, 0.895, 3478, 7},
		"AccuSim":                   {0.808, 0.822, 0.886, 0.815, 7171, 15},
		"AccuGenPartition (Max)":    {0.872, 0.884, 0.925, 0.878, 675078, 0},
		"AccuGenPartition (Avg)":    {0.938, 0.958, 0.968, 0.948, 675078, 0},
		"AccuGenPartition (Oracle)": {0.965, 0.976, 0.982, 0.970, 675078, 0},
		"TD-AC (F=Accu)":            {0.965, 0.976, 0.982, 0.970, 2491, 1},
	},
}

// SemiSynth holds Tables 6–7: accuracy by attribute count, range and
// algorithm.
var SemiSynth = map[int]map[int]map[string]float64{
	62: {
		25:   {"Accu": 0.938, "TD-AC (F=Accu)": 0.931, "TruthFinder": 0.931, "TD-AC (F=TruthFinder)": 0.933},
		50:   {"Accu": 0.951, "TD-AC (F=Accu)": 0.976, "TruthFinder": 0.946, "TD-AC (F=TruthFinder)": 0.946},
		100:  {"Accu": 0.990, "TD-AC (F=Accu)": 0.984, "TruthFinder": 0.954, "TD-AC (F=TruthFinder)": 0.955},
		1000: {"Accu": 0.991, "TD-AC (F=Accu)": 0.984, "TruthFinder": 0.956, "TD-AC (F=TruthFinder)": 0.956},
	},
	124: {
		25:   {"Accu": 0.904, "TD-AC (F=Accu)": 0.906, "TruthFinder": 0.954, "TD-AC (F=TruthFinder)": 0.954},
		50:   {"Accu": 0.931, "TD-AC (F=Accu)": 0.964, "TruthFinder": 0.962, "TD-AC (F=TruthFinder)": 0.961},
		100:  {"Accu": 0.943, "TD-AC (F=Accu)": 0.980, "TruthFinder": 0.961, "TD-AC (F=TruthFinder)": 0.965},
		1000: {"Accu": 0.966, "TD-AC (F=Accu)": 0.970, "TruthFinder": 0.970, "TD-AC (F=TruthFinder)": 0.965},
	},
}

// DatasetStats is one column of Table 8.
type DatasetStats struct {
	Sources, Objects, Attrs, Observations int
	DCR                                   float64
}

// Table8 holds the published real-dataset statistics.
var Table8 = map[string]DatasetStats{
	"Stocks":   {55, 100, 15, 56992, 75},
	"Exam 32":  {248, 1, 32, 6451, 81},
	"Exam 62":  {248, 1, 62, 8585, 55},
	"Exam 124": {248, 1, 124, 11305, 36},
	"Flights":  {38, 100, 6, 8644, 66},
}

// Table9 holds the published real-dataset accuracies.
var Table9 = map[string]map[string]float64{
	"Exam 32":  {"Accu": 0.658, "TD-AC (F=Accu)": 0.679, "TruthFinder": 0.570, "TD-AC (F=TruthFinder)": 0.558},
	"Exam 62":  {"Accu": 0.944, "TD-AC (F=Accu)": 0.911, "TruthFinder": 0.926, "TD-AC (F=TruthFinder)": 0.854},
	"Exam 124": {"Accu": 0.947, "TD-AC (F=Accu)": 0.904, "TruthFinder": 0.916, "TD-AC (F=TruthFinder)": 0.878},
	"Stocks":   {"Accu": 0.809, "TD-AC (F=Accu)": 0.887, "TruthFinder": 0.718, "TD-AC (F=TruthFinder)": 0.832},
	"Flights":  {"Accu": 0.957, "TD-AC (F=Accu)": 0.974, "TruthFinder": 0.857, "TD-AC (F=TruthFinder)": 0.842},
}

// HighDCRDatasets and LowDCRDatasets give the Figure 4/5 split.
var (
	HighDCRDatasets = []string{"Exam 32", "Stocks", "Flights"}
	LowDCRDatasets  = []string{"Exam 62", "Exam 124"}
)

// Claim is one qualitative finding of the paper that a reproduction must
// preserve.
type Claim struct {
	// ID is a short slug ("partitioning-wins", …).
	ID string
	// Statement quotes or paraphrases the paper.
	Statement string
}

// Claims lists the paper's headline findings in Section 4.5 order.
func Claims() []Claim {
	return []Claim{
		{"partitioning-wins", "attribute-partitioning algorithms outperform the standard ones on all three synthetic datasets"},
		{"tdac-tracks-oracle", "TD-AC is the only partitioning strategy with precision comparable to the Oracle without a blowup of the running time"},
		{"tdac-improves-base", "TD-AC improves the accuracy of standard algorithms by at least 1% on synthetic data"},
		{"tdac-fast", "TD-AC's running time is far below AccuGenPartition's"},
		{"tdac-one-iteration", "TD-AC only requires one iteration"},
		{"partition-recovery", "k-means with the silhouette recovers the planted partitions better than the Max/Avg weightings"},
		{"range-trend", "semi-synthetic accuracy does not decrease as the false-value range grows"},
		{"no-deterioration", "combining a base algorithm with TD-AC does not highly deteriorate its performance on semi-synthetic data"},
		{"dcr-correlation", "TD-AC helps on real data when the coverage rate is high (>=66%) and is less effective when it is low"},
	}
}
