package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table3", "table4a", "table4b", "table4c", "table5", "fig1",
		"table6", "table7", "fig2", "fig3", "table8", "table9", "fig4", "fig5",
		"ext-algorithms", "ext-coverage", "ext-scale", "ext-variance",
	}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(got), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table5")
	if err != nil || e.ID != "table5" {
		t.Errorf("ByID(table5) = %v, %v", e.ID, err)
	}
	// Sub-table ids resolve to their family.
	e, err = ByID("table6b")
	if err != nil || e.ID != "table6" {
		t.Errorf("ByID(table6b) = %v, %v", e.ID, err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("ByID accepted an unknown id")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
}

func TestRunnerDatasets(t *testing.T) {
	r := NewRunner(Options{})
	for _, id := range []string{"DS1", "DS2", "DS3", "stocks", "flights", "exam32", "exam62-r25"} {
		d, err := r.Dataset(id)
		if err != nil {
			t.Fatalf("Dataset(%s): %v", id, err)
		}
		if d.NumClaims() == 0 {
			t.Errorf("Dataset(%s) empty", id)
		}
	}
	if _, err := r.Dataset("nope"); err == nil {
		t.Error("Dataset accepted an unknown id")
	}
}

func TestRunnerDatasetCaching(t *testing.T) {
	r := NewRunner(Options{})
	d1, err := r.Dataset("DS1")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Dataset("DS1")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("Dataset not cached: distinct pointers returned")
	}
}

func TestRunnerPlanted(t *testing.T) {
	r := NewRunner(Options{})
	p, err := r.Planted("DS1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6 {
		t.Errorf("planted size = %d, want 6", p.Size())
	}
	// Exam datasets have no planted partition.
	p, err = r.Planted("exam32")
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Error("exam planted should be nil")
	}
}

func TestRunnerMeasureCaching(t *testing.T) {
	r := NewRunner(Options{})
	m1, err := r.Measure("DS1", Std("MajorityVote"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Measure("DS1", Std("MajorityVote"))
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("Measure not cached")
	}
	if m1.Report.Accuracy <= 0 {
		t.Error("measurement has no accuracy")
	}
	row := m1.Row()
	if len(row) != len(measureHeader) {
		t.Errorf("Row has %d cells, header %d", len(row), len(measureHeader))
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"xxxxxxxx", "y"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== t: demo ==", "xxxxxxxx", "Blong", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestAllExperimentsSmoke runs the complete suite at smoke scale and
// checks each produces at least one well-formed table. This is the
// integration test of the whole repository: generators → algorithms →
// TD-AC → metrics → tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	r := NewRunner(Options{})
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(r)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %s has no rows", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Errorf("table %s row width %d != header %d", tab.ID, len(row), len(tab.Header))
					}
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Errorf("render %s: %v", tab.ID, err)
				}
			}
		})
	}
}

// TestHeadlineShapesHold asserts the paper's three headline findings on
// the smoke-scale workloads: (1) TD-AC beats the standard algorithms on
// structurally correlated synthetic data; (2) TD-AC is dramatically
// faster than the brute-force AccuGenPartition; (3) TD-AC's partition
// matches the Oracle-quality partitions on DS2/DS3.
func TestHeadlineShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shapes need real runs")
	}
	r := NewRunner(Options{})
	for _, ds := range []string{"DS2", "DS3"} {
		tdac, err := r.Measure(ds, TDACSpec("Accu"))
		if err != nil {
			t.Fatal(err)
		}
		accu, err := r.Measure(ds, Std("Accu"))
		if err != nil {
			t.Fatal(err)
		}
		mv, err := r.Measure(ds, Std("MajorityVote"))
		if err != nil {
			t.Fatal(err)
		}
		if tdac.Report.Accuracy < accu.Report.Accuracy {
			t.Errorf("%s: TD-AC %.3f below Accu %.3f", ds, tdac.Report.Accuracy, accu.Report.Accuracy)
		}
		if tdac.Report.Accuracy < mv.Report.Accuracy {
			t.Errorf("%s: TD-AC %.3f below MajorityVote %.3f", ds, tdac.Report.Accuracy, mv.Report.Accuracy)
		}
		gen, err := r.Measure(ds, GenPartitionSpec("Accu", 0))
		if err != nil {
			t.Fatal(err)
		}
		if gen.Runtime < tdac.Runtime*2 {
			t.Errorf("%s: AccuGenPartition %.3fs not clearly slower than TD-AC %.3fs",
				ds, gen.Runtime.Seconds(), tdac.Runtime.Seconds())
		}
		planted, err := r.Planted(ds)
		if err != nil {
			t.Fatal(err)
		}
		if !tdac.Partition.Equal(planted) {
			t.Errorf("%s: TD-AC partition %s != planted %s", ds, tdac.Partition, planted)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"A", "B"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x: demo", "A,B", "1,2"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	r := NewRunner(Options{})
	for _, id := range []string{"ext-algorithms", "ext-coverage", "ext-scale", "ext-variance"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 || len(tables[0].Rows) == 0 {
			t.Errorf("%s produced unexpected shape", id)
		}
	}
}
