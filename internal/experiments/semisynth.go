package experiments

import "fmt"

// ranges are the false-answer pool sizes of Tables 6–7.
var ranges = []int{25, 50, 100, 1000}

// pairSpecs lists the four contenders of Tables 6, 7 and 9 in paper order.
func pairSpecs() []AlgorithmSpec {
	return []AlgorithmSpec{
		Std("Accu"),
		TDACSpec("Accu"),
		Std("TruthFinder"),
		TDACSpec("TruthFinder"),
	}
}

// semiSynthTables builds the sub-tables of Table 6 (62 attributes) or
// Table 7 (124 attributes): one sub-table per false-value range.
func semiSynthTables(r *Runner, tableID string, attrs int) ([]*Table, error) {
	var out []*Table
	for i, rng := range ranges {
		sub := string('a' + rune(i))
		t := &Table{
			ID:     tableID + sub,
			Title:  fmt.Sprintf("Semi-synthetic dataset, %d attributes, range %d", attrs, rng),
			Header: measureHeader,
		}
		dsID := fmt.Sprintf("exam%d-r%d", attrs, rng)
		for _, spec := range pairSpecs() {
			m, err := r.Measure(dsID, spec)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Row()...)
		}
		out = append(out, t)
	}
	return out, nil
}

func table6(r *Runner) ([]*Table, error) { return semiSynthTables(r, "table6", 62) }
func table7(r *Runner) ([]*Table, error) { return semiSynthTables(r, "table7", 124) }

// pairwiseFig builds Figures 2/3: the accuracy of each base algorithm
// with and without TD-AC across false-value ranges, the series behind the
// paper's grouped bars.
func pairwiseFig(r *Runner, figID string, attrs int) ([]*Table, error) {
	t := &Table{
		ID: figID,
		Title: fmt.Sprintf(
			"Impact of TD-AC on Accu and TruthFinder: accuracy on semi-synthetic datasets with %d attributes", attrs),
		Header: []string{"Range", "Accu", "TD-AC (F=Accu)", "TruthFinder", "TD-AC (F=TruthFinder)"},
	}
	for _, rng := range ranges {
		dsID := fmt.Sprintf("exam%d-r%d", attrs, rng)
		row := []string{fmt.Sprintf("%d", rng)}
		for _, spec := range pairSpecs() {
			m, err := r.Measure(dsID, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(m.Report.Accuracy))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

func fig2(r *Runner) ([]*Table, error) { return pairwiseFig(r, "fig2", 62) }
func fig3(r *Runner) ([]*Table, error) { return pairwiseFig(r, "fig3", 124) }
