package experiments

import (
	"fmt"

	"tdac/internal/truthdata"
)

// realSets lists the §4.4 datasets in Table 8 order, with the exam
// variants at their default range (100).
var realSets = []struct {
	label string
	id    string
}{
	{"Stocks", "stocks"},
	{"Exam 32", "exam32"},
	{"Exam 62", "exam62"},
	{"Exam 124", "exam124"},
	{"Flights", "flights"},
}

// table8 reproduces Table 8: statistics about the real datasets.
func table8(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "table8",
		Title:  "Statistics about the different real datasets",
		Header: []string{""},
	}
	rows := [][]string{
		{"Number of sources"},
		{"Number of objects"},
		{"Number of attributes"},
		{"Number of observations"},
		{"Data Coverage Rate (%)"},
	}
	for _, set := range realSets {
		d, err := r.Dataset(set.id)
		if err != nil {
			return nil, err
		}
		st := truthdata.ComputeStats(d)
		t.Header = append(t.Header, set.label)
		rows[0] = append(rows[0], fmt.Sprintf("%d", st.Sources))
		rows[1] = append(rows[1], fmt.Sprintf("%d", st.Objects))
		rows[2] = append(rows[2], fmt.Sprintf("%d", st.Attrs))
		rows[3] = append(rows[3], fmt.Sprintf("%d", st.Observations))
		rows[4] = append(rows[4], fmt.Sprintf("%.0f", st.DCR))
	}
	t.Rows = rows
	return []*Table{t}, nil
}

// table9 reproduces Table 9: Accu, TD-AC+Accu, TruthFinder and
// TD-AC+TruthFinder on every real dataset, one sub-table each, in the
// paper's order (Exam 32/62/124, Stocks, Flights).
func table9(r *Runner) ([]*Table, error) {
	order := []struct {
		sub   string
		label string
		id    string
	}{
		{"a", "Exam 32", "exam32"},
		{"b", "Exam 62", "exam62"},
		{"c", "Exam 124", "exam124"},
		{"d", "Stocks", "stocks"},
		{"e", "Flights", "flights"},
	}
	var out []*Table
	for _, set := range order {
		t := &Table{
			ID:     "table9" + set.sub,
			Title:  fmt.Sprintf("Performance on %s", set.label),
			Header: measureHeader,
		}
		for _, spec := range pairSpecs() {
			m, err := r.Measure(set.id, spec)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Row()...)
		}
		out = append(out, t)
	}
	return out, nil
}

// dcrFig builds Figures 4/5: accuracy of the base algorithms with and
// without TD-AC on the real datasets, split by data coverage rate.
func dcrFig(r *Runner, figID string, highDCR bool) ([]*Table, error) {
	var title, bound string
	if highDCR {
		title, bound = "DCR >= 66", "Exam 32, Stocks, Flights"
	} else {
		title, bound = "DCR <= 55", "Exam 62, Exam 124"
	}
	t := &Table{
		ID:     figID,
		Title:  fmt.Sprintf("Impact of TD-AC on real datasets with %s (%s)", title, bound),
		Header: []string{"Dataset", "Accu", "TD-AC (F=Accu)", "TruthFinder", "TD-AC (F=TruthFinder)"},
	}
	var sets []struct{ label, id string }
	if highDCR {
		sets = []struct{ label, id string }{
			{"Exam 32", "exam32"}, {"Stocks", "stocks"}, {"Flights", "flights"},
		}
	} else {
		sets = []struct{ label, id string }{
			{"Exam 62", "exam62"}, {"Exam 124", "exam124"},
		}
	}
	for _, set := range sets {
		row := []string{set.label}
		for _, spec := range pairSpecs() {
			m, err := r.Measure(set.id, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(m.Report.Accuracy))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

func fig4(r *Runner) ([]*Table, error) { return dcrFig(r, "fig4", true) }
func fig5(r *Runner) ([]*Table, error) { return dcrFig(r, "fig5", false) }
