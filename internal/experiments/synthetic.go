package experiments

import (
	"fmt"

	"tdac/internal/genpartition"
)

// synthIDs are the three synthetic configurations of §4.2.
var synthIDs = []string{"DS1", "DS2", "DS3"}

// synthConfigs mirrors Table 3.
var synthConfigs = map[string][3]float64{
	"DS1": {1.0, 0.0, 1.0},
	"DS2": {1.0, 0.0, 0.8},
	"DS3": {1.0, 0.2, 0.8},
}

// table3 reproduces Table 3: the (m1, m2, m3) configuration per dataset.
func table3(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Average accuracy values for the various configurations of the synthetic datasets",
		Header: []string{"", "DS1", "DS2", "DS3"},
	}
	for i, m := range []string{"m1", "m2", "m3"} {
		row := []string{m}
		for _, id := range synthIDs {
			row = append(row, fmt.Sprintf("%.1f", synthConfigs[id][i]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"m1 = expert-group accuracy, m2 = non-expert accuracy, m3 = fraction of structured sources (see DESIGN.md)")
	return []*Table{t}, nil
}

// synthSpecs lists the Table 4 contenders in paper order.
func synthSpecs() []AlgorithmSpec {
	return []AlgorithmSpec{
		Std("MajorityVote"),
		Std("TruthFinder"),
		Std("Depen"),
		Std("Accu"),
		Std("AccuSim"),
		GenPartitionSpec("Accu", genpartition.Max),
		GenPartitionSpec("Accu", genpartition.Avg),
		GenPartitionSpec("Accu", genpartition.Oracle),
		TDACSpec("Accu"),
	}
}

// table4 reproduces one sub-table of Table 4: every algorithm on one
// synthetic dataset.
func table4(r *Runner, sub, dataset string) ([]*Table, error) {
	t := &Table{
		ID:     "table4" + sub,
		Title:  fmt.Sprintf("Performance measures on %s", dataset),
		Header: measureHeader,
	}
	for _, spec := range synthSpecs() {
		m, err := r.Measure(dataset, spec)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Row()...)
	}
	return []*Table{t}, nil
}

// table5 reproduces Table 5: the planted partition and the partitions
// returned by every partitioning approach on DS1–DS3.
func table5(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Partitions chosen by the generator and returned by the different partitioning algorithms",
		Header: append([]string{""}, synthIDs...),
	}
	rows := []struct {
		label string
		spec  *AlgorithmSpec
	}{
		{"Synthetic data generator", nil},
		{"AccuGenPartition (Max)", specPtr(GenPartitionSpec("Accu", genpartition.Max))},
		{"AccuGenPartition (Avg)", specPtr(GenPartitionSpec("Accu", genpartition.Avg))},
		{"AccuGenPartition (Oracle)", specPtr(GenPartitionSpec("Accu", genpartition.Oracle))},
		{"TD-AC (F=Accu)", specPtr(TDACSpec("Accu"))},
	}
	for _, row := range rows {
		cells := []string{row.label}
		for _, id := range synthIDs {
			if row.spec == nil {
				planted, err := r.Planted(id)
				if err != nil {
					return nil, err
				}
				cells = append(cells, planted.String())
				continue
			}
			m, err := r.Measure(id, *row.spec)
			if err != nil {
				return nil, err
			}
			cells = append(cells, m.Partition.String())
		}
		t.AddRow(cells...)
	}
	return []*Table{t}, nil
}

func specPtr(s AlgorithmSpec) *AlgorithmSpec { return &s }

// fig1 reproduces Figure 1: the accuracy of every tested algorithm on
// DS1–DS3, as the series behind the bar chart.
func fig1(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "Comparison of the accuracy of all tested algorithms on DS1, DS2 and DS3",
		Header: append([]string{"Algorithm"}, synthIDs...),
	}
	for _, spec := range synthSpecs() {
		row := []string{spec.Key}
		for _, id := range synthIDs {
			m, err := r.Measure(id, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(m.Report.Accuracy))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
