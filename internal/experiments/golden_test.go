package experiments

import "testing"

// TestGoldenSeedSummaries pins the smoke-scale synthetic summary for two
// fixed generator seeds: every accuracy column of the paper's row layout
// (precision, recall, accuracy, F1, iteration count — everything except
// wall time) must stay bit-identical across refactors of the runner, the
// generators or the algorithms. A legitimate behaviour change must
// update these rows deliberately; a silent drift fails here first.
func TestGoldenSeedSummaries(t *testing.T) {
	specs := map[string]AlgorithmSpec{
		"MajorityVote":   Std("MajorityVote"),
		"Accu":           Std("Accu"),
		"TD-AC (F=Accu)": TDACSpec("Accu"),
	}
	golden := []struct {
		seed      int64
		dataset   string
		algorithm string
		// want holds precision, recall, accuracy, F1 and #iterations —
		// Row() columns 1-4 and 6, skipping the wall-time column 5.
		want []string
	}{
		{0, "DS1", "MajorityVote", []string{"0.667", "0.763", "0.835", "0.712", "1"}},
		{0, "DS1", "Accu", []string{"0.737", "0.748", "0.862", "0.742", "12"}},
		{0, "DS1", "TD-AC (F=Accu)", []string{"0.817", "0.750", "0.889", "0.782", "1"}},
		{0, "DS3", "MajorityVote", []string{"0.992", "0.995", "0.993", "0.994", "1"}},
		{0, "DS3", "Accu", []string{"0.982", "0.984", "0.980", "0.983", "4"}},
		{0, "DS3", "TD-AC (F=Accu)", []string{"1.000", "1.000", "1.000", "1.000", "1"}},
		{7, "DS1", "MajorityVote", []string{"0.635", "0.743", "0.817", "0.685", "1"}},
		{7, "DS1", "Accu", []string{"0.704", "0.749", "0.849", "0.726", "9"}},
		{7, "DS1", "TD-AC (F=Accu)", []string{"0.785", "0.750", "0.879", "0.767", "1"}},
		{7, "DS3", "MajorityVote", []string{"0.996", "0.997", "0.996", "0.996", "1"}},
		{7, "DS3", "Accu", []string{"0.993", "0.994", "0.993", "0.993", "3"}},
		{7, "DS3", "TD-AC (F=Accu)", []string{"1.000", "1.000", "1.000", "1.000", "1"}},
	}
	runners := map[int64]*Runner{}
	for _, g := range golden {
		r := runners[g.seed]
		if r == nil {
			r = NewRunner(Options{Seed: g.seed})
			runners[g.seed] = r
		}
		m, err := r.Measure(g.dataset, specs[g.algorithm])
		if err != nil {
			t.Fatalf("seed %d, %s on %s: %v", g.seed, g.algorithm, g.dataset, err)
		}
		row := m.Row()
		got := []string{row[1], row[2], row[3], row[4], row[6]}
		for i, want := range g.want {
			if got[i] != want {
				t.Errorf("seed %d, %s on %s: column %d = %s, golden %s (full row %v)",
					g.seed, g.algorithm, g.dataset, i, got[i], want, got)
			}
		}
	}
}
