// Package experiments regenerates every table and figure of the paper's
// Section 4. Each experiment produces text tables whose rows mirror the
// paper's, computed on this repository's implementations and simulated
// datasets (see DESIGN.md for the substitutions). A memoizing Runner
// shares dataset generation and algorithm runs across experiments, since
// several figures are re-renderings of table data.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: an id matching the paper
// ("table4a", "fig1", …), a title, a header row and data rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV with a leading comment line carrying
// the id and title, ready for external plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// f3 formats a metric with the paper's three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
