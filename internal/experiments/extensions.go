package experiments

import (
	"fmt"
	"math"
	"time"

	"tdac/internal/algorithms"
	"tdac/internal/core"
	"tdac/internal/metrics"
	"tdac/internal/synth"
)

// This file implements the paper's stated research perspectives (§6) as
// additional experiments, beyond the published tables and figures:
//
//   - ext-algorithms: "compare ourselves to a larger set of standard
//     truth discovery algorithms" — all thirteen registered algorithms,
//     including 2-/3-Estimates (Galland et al., the paper's [7]) and CRH,
//     with and without TD-AC on the synthetic configurations;
//   - ext-coverage: the §4.5 observation "TD-AC is more efficient when
//     the data coverage is very high" turned into a proper sweep, with
//     the sparse-aware masked variant (perspective (i)) alongside;
//   - ext-scale: running-time growth with the number of objects, and the
//     speedup of parallel per-group discovery (perspective (ii)).

// extAlgorithms reports the accuracy of every registered algorithm and of
// TD-AC over it on DS2 (the configuration the paper's setting targets).
func extAlgorithms(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "ext-algorithms",
		Title:  "All registered algorithms on DS2, alone and wrapped in TD-AC",
		Header: []string{"Algorithm", "Accuracy", "TD-AC Accuracy", "Delta", "Time(s)", "TD-AC Time(s)"},
	}
	for _, name := range algorithms.Names() {
		base, err := r.Measure("DS2", Std(name))
		if err != nil {
			return nil, err
		}
		wrapped, err := r.Measure("DS2", TDACSpec(name))
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			f3(base.Report.Accuracy),
			f3(wrapped.Report.Accuracy),
			fmt.Sprintf("%+.3f", wrapped.Report.Accuracy-base.Report.Accuracy),
			fmt.Sprintf("%.3f", base.Runtime.Seconds()),
			fmt.Sprintf("%.3f", wrapped.Runtime.Seconds()),
		)
	}
	t.Notes = append(t.Notes,
		"TwoEstimates/ThreeEstimates are Galland et al. 2010 (the paper's [7]); CRH is Li et al. 2014")
	return []*Table{t}, nil
}

// extCoverage sweeps the claim coverage of a DS2-shaped generator and
// reports base Accu, TD-AC and sparse-aware TD-AC accuracies: the
// quantitative version of the paper's DCR observation.
func extCoverage(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "ext-coverage",
		Title:  "TD-AC accuracy vs data coverage (DS2 structure), plain vs sparse-aware vectors",
		Header: []string{"Coverage", "DCR(%)", "Accu", "TD-AC", "TD-AC (masked)", "TD-AC delta", "Masked delta"},
	}
	objects := 150
	if r.Opts.Full {
		objects = 1000
	}
	for _, coverage := range []float64{1.0, 0.8, 0.6, 0.4, 0.25} {
		cfg := synth.DS2().Scaled(objects)
		cfg.Name = fmt.Sprintf("DS2-cov%.2f", coverage)
		cfg.Coverage = coverage
		cfg.Seed += r.Opts.Seed
		g, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		d := g.Dataset

		base, err := algorithms.NewAccu().Discover(d)
		if err != nil {
			return nil, err
		}
		baseAcc := metrics.Evaluate(d, base.Truth).Accuracy

		plain := core.New(algorithms.NewAccu())
		plainOut, err := plain.Run(d)
		if err != nil {
			return nil, err
		}
		plainAcc := metrics.Evaluate(d, plainOut.Truth).Accuracy

		masked := core.New(algorithms.NewAccu())
		masked.Masked = true
		maskedOut, err := masked.Run(d)
		if err != nil {
			return nil, err
		}
		maskedAcc := metrics.Evaluate(d, maskedOut.Truth).Accuracy

		// The DCR of fully random coverage equals the coverage itself.
		t.AddRow(
			fmt.Sprintf("%.2f", coverage),
			fmt.Sprintf("%.0f", 100*coverage),
			f3(baseAcc), f3(plainAcc), f3(maskedAcc),
			fmt.Sprintf("%+.3f", plainAcc-baseAcc),
			fmt.Sprintf("%+.3f", maskedAcc-plainAcc),
		)
	}
	t.Notes = append(t.Notes,
		"masked = future-work item (i): missing claims encoded as a mask and skipped by the clustering distance")
	return []*Table{t}, nil
}

// extScale measures TD-AC wall time against dataset size, sequential vs
// parallel per-group discovery (future-work item (ii)).
func extScale(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "ext-scale",
		Title:  "TD-AC running time vs dataset size, sequential vs parallel groups",
		Header: []string{"Objects", "Claims", "Accu(s)", "TD-AC seq(s)", "TD-AC par(s)", "Speedup", "Accuracy"},
	}
	sizes := []int{100, 250, 500}
	if r.Opts.Full {
		sizes = []int{250, 500, 1000, 2000, 4000}
	}
	for _, objects := range sizes {
		cfg := synth.DS2().Scaled(objects)
		cfg.Name = fmt.Sprintf("DS2-%dobj", objects)
		cfg.Seed += r.Opts.Seed
		g, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		d := g.Dataset

		baseStart := time.Now()
		if _, err := algorithms.NewAccu().Discover(d); err != nil {
			return nil, err
		}
		baseTime := time.Since(baseStart)

		seq := core.New(algorithms.NewAccu())
		seqStart := time.Now()
		seqOut, err := seq.Run(d)
		if err != nil {
			return nil, err
		}
		seqTime := time.Since(seqStart)

		par := core.New(algorithms.NewAccu())
		par.Parallel = true
		parStart := time.Now()
		if _, err := par.Run(d); err != nil {
			return nil, err
		}
		parTime := time.Since(parStart)

		t.AddRow(
			fmt.Sprintf("%d", objects),
			fmt.Sprintf("%d", d.NumClaims()),
			fmt.Sprintf("%.3f", baseTime.Seconds()),
			fmt.Sprintf("%.3f", seqTime.Seconds()),
			fmt.Sprintf("%.3f", parTime.Seconds()),
			fmt.Sprintf("%.2fx", seqTime.Seconds()/parTime.Seconds()),
			f3(metrics.Evaluate(d, seqOut.Truth).Accuracy),
		)
	}
	return []*Table{t}, nil
}

// extVariance replicates the key DS1–DS3 measurements over several
// generator seeds and reports mean ± standard deviation, quantifying how
// much of any single-table number is seed noise. Rigor the paper's
// single-run tables lack.
func extVariance(r *Runner) ([]*Table, error) {
	t := &Table{
		ID:     "ext-variance",
		Title:  "Accuracy mean ± std over generator seeds (TD-AC vs Accu)",
		Header: []string{"Dataset", "Runs", "Accu mean", "Accu std", "TD-AC mean", "TD-AC std", "Mean delta"},
	}
	runs := 5
	objects := 150
	if r.Opts.Full {
		objects = 1000
	}
	cfgs := map[string]func() synth.Config{"DS1": synth.DS1, "DS2": synth.DS2, "DS3": synth.DS3}
	for _, name := range []string{"DS1", "DS2", "DS3"} {
		var accuAccs, tdacAccs []float64
		for seed := int64(0); seed < int64(runs); seed++ {
			cfg := cfgs[name]().Scaled(objects)
			cfg.Seed += 1000 * seed
			g, err := synth.Generate(cfg)
			if err != nil {
				return nil, err
			}
			base, err := algorithms.NewAccu().Discover(g.Dataset)
			if err != nil {
				return nil, err
			}
			accuAccs = append(accuAccs, metrics.Evaluate(g.Dataset, base.Truth).Accuracy)
			out, err := core.New(algorithms.NewAccu()).Run(g.Dataset)
			if err != nil {
				return nil, err
			}
			tdacAccs = append(tdacAccs, metrics.Evaluate(g.Dataset, out.Truth).Accuracy)
		}
		am, as := meanStd(accuAccs)
		tm, ts := meanStd(tdacAccs)
		t.AddRow(name, fmt.Sprintf("%d", runs),
			f3(am), f3(as), f3(tm), f3(ts), fmt.Sprintf("%+.3f", tm-am))
	}
	return []*Table{t}, nil
}

// meanStd returns the mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
