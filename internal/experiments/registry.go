package experiments

import (
	"fmt"
	"sort"
)

// Experiment regenerates one (or a family of) paper artifacts.
type Experiment struct {
	// ID matches the paper artifact ("table4a", "fig1", …).
	ID string
	// Title describes the artifact.
	Title string
	// Run produces the tables on the given runner.
	Run func(*Runner) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table3", Title: "Synthetic generator configurations", Run: table3},
		{ID: "table4a", Title: "All algorithms on DS1", Run: func(r *Runner) ([]*Table, error) { return table4(r, "a", "DS1") }},
		{ID: "table4b", Title: "All algorithms on DS2", Run: func(r *Runner) ([]*Table, error) { return table4(r, "b", "DS2") }},
		{ID: "table4c", Title: "All algorithms on DS3", Run: func(r *Runner) ([]*Table, error) { return table4(r, "c", "DS3") }},
		{ID: "table5", Title: "Partitions chosen on DS1–DS3", Run: table5},
		{ID: "fig1", Title: "Accuracy comparison on DS1–DS3", Run: fig1},
		{ID: "table6", Title: "Semi-synthetic, 62 attributes", Run: table6},
		{ID: "table7", Title: "Semi-synthetic, 124 attributes", Run: table7},
		{ID: "fig2", Title: "TD-AC impact, 62 attributes", Run: fig2},
		{ID: "fig3", Title: "TD-AC impact, 124 attributes", Run: fig3},
		{ID: "table8", Title: "Real dataset statistics", Run: table8},
		{ID: "table9", Title: "Real dataset performance", Run: table9},
		{ID: "fig4", Title: "TD-AC impact, DCR >= 66", Run: fig4},
		{ID: "fig5", Title: "TD-AC impact, DCR <= 55", Run: fig5},
		// Extensions beyond the paper's published artifacts,
		// implementing its §6 research perspectives.
		{ID: "ext-algorithms", Title: "Extension: larger algorithm set on DS2", Run: extAlgorithms},
		{ID: "ext-coverage", Title: "Extension: accuracy vs data coverage sweep", Run: extCoverage},
		{ID: "ext-scale", Title: "Extension: runtime scaling, sequential vs parallel", Run: extScale},
		{ID: "ext-variance", Title: "Extension: seed variance of the headline result", Run: extVariance},
	}
}

// ByID resolves one experiment; "table6a" style sub-ids resolve to their
// family ("table6").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	// Accept sub-table ids ("table6a"…"table6d") by family prefix plus a
	// single letter suffix.
	for _, e := range All() {
		if len(id) == len(e.ID)+1 && id[:len(e.ID)] == e.ID {
			if s := id[len(id)-1]; s >= 'a' && s <= 'e' {
				return e, nil
			}
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists every experiment id, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
