package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tdac/internal/algorithms"
	"tdac/internal/core"
	"tdac/internal/exam"
	"tdac/internal/genpartition"
	"tdac/internal/metrics"
	"tdac/internal/partition"
	"tdac/internal/realdata"
	"tdac/internal/synth"
	"tdac/internal/truthdata"
)

// Options configures a Runner.
type Options struct {
	// Full runs the paper-scale workloads (1000 objects, 248 students,
	// the complete k range). The default is a scaled-down smoke scale
	// that preserves every structural property but finishes in seconds.
	Full bool
	// Seed offsets every generator seed, for robustness sweeps.
	Seed int64
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Measurement is one (dataset, algorithm) evaluation.
type Measurement struct {
	Dataset    string
	Algorithm  string
	Report     metrics.Report
	Runtime    time.Duration
	Iterations int
	// Partition and Silhouette are set by partitioning algorithms.
	Partition  partition.Partition
	Silhouette float64
}

// Row renders the measurement in the paper's column layout:
// Algorithm, Precision, Recall, Accuracy, F1-measure, Time(s), #Iteration.
func (m *Measurement) Row() []string {
	return []string{
		m.Algorithm,
		f3(m.Report.Precision),
		f3(m.Report.Recall),
		f3(m.Report.Accuracy),
		f3(m.Report.F1),
		fmt.Sprintf("%.3f", m.Runtime.Seconds()),
		fmt.Sprintf("%d", m.Iterations),
	}
}

// measureHeader is the shared table header of Tables 4, 6, 7 and 9.
var measureHeader = []string{"Algorithm", "Precision", "Recall", "Accuracy", "F1-measure", "Time(s)", "#Iteration"}

// Runner memoizes datasets and algorithm runs across experiments.
type Runner struct {
	Opts Options

	mu       sync.Mutex
	datasets map[string]*datasetEntry
	runs     map[string]*Measurement
}

type datasetEntry struct {
	d       *truthdata.Dataset
	planted partition.Partition
}

// NewRunner returns a Runner over opts.
func NewRunner(opts Options) *Runner {
	return &Runner{
		Opts:     opts,
		datasets: make(map[string]*datasetEntry),
		runs:     make(map[string]*Measurement),
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Opts.Log != nil {
		fmt.Fprintf(r.Opts.Log, format+"\n", args...)
	}
}

// Dataset materialises (and caches) a dataset by id. Known ids:
// "DS1", "DS2", "DS3"; "exam<attrs>-r<range>" (e.g. "exam62-r25");
// "stocks"; "flights".
func (r *Runner) Dataset(id string) (*truthdata.Dataset, error) {
	e, err := r.datasetEntry(id)
	if err != nil {
		return nil, err
	}
	return e.d, nil
}

// Planted returns the generator's planted attribute partition for ids
// that have one (synthetic and real simulators), or nil.
func (r *Runner) Planted(id string) (partition.Partition, error) {
	e, err := r.datasetEntry(id)
	if err != nil {
		return nil, err
	}
	return e.planted, nil
}

func (r *Runner) datasetEntry(id string) (*datasetEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.datasets[id]; ok {
		return e, nil
	}
	e, err := r.buildDataset(id)
	if err != nil {
		return nil, err
	}
	r.datasets[id] = e
	return e, nil
}

func (r *Runner) buildDataset(id string) (*datasetEntry, error) {
	switch {
	case id == "DS1" || id == "DS2" || id == "DS3":
		cfg := map[string]func() synth.Config{"DS1": synth.DS1, "DS2": synth.DS2, "DS3": synth.DS3}[id]()
		if !r.Opts.Full {
			cfg = cfg.Scaled(150)
		}
		cfg.Seed += r.Opts.Seed
		g, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		r.logf("generated %s: %d claims", id, g.Dataset.NumClaims())
		return &datasetEntry{d: g.Dataset, planted: g.Planted}, nil
	case id == "stocks":
		cfg := realdata.StocksConfig{Seed: r.Opts.Seed}
		if !r.Opts.Full {
			cfg.Objects = 40
		}
		g, err := realdata.Stocks(cfg)
		if err != nil {
			return nil, err
		}
		r.logf("generated stocks: %d claims", g.Dataset.NumClaims())
		return &datasetEntry{d: g.Dataset, planted: g.Planted}, nil
	case id == "flights":
		cfg := realdata.FlightsConfig{Seed: r.Opts.Seed}
		if !r.Opts.Full {
			cfg.Objects = 40
		}
		g, err := realdata.Flights(cfg)
		if err != nil {
			return nil, err
		}
		r.logf("generated flights: %d claims", g.Dataset.NumClaims())
		return &datasetEntry{d: g.Dataset, planted: g.Planted}, nil
	default:
		// "exam<attrs>-r<range>" is the semi-synthetic (filled) variant of
		// Tables 6–7; "exam<attrs>" is the real variant of Tables 8–9.
		var attrs, rng int
		cfg := exam.Config{Seed: 9000 + r.Opts.Seed}
		if n, err := fmt.Sscanf(id, "exam%d-r%d", &attrs, &rng); err == nil && n == 2 {
			cfg.Attrs, cfg.Range, cfg.Fill = attrs, rng, true
		} else if n, err := fmt.Sscanf(id, "exam%d", &attrs); err == nil && n == 1 {
			cfg.Attrs = attrs
		} else {
			return nil, fmt.Errorf("experiments: unknown dataset id %q", id)
		}
		if !r.Opts.Full {
			cfg.Students = 80
		}
		d, err := exam.Generate(cfg)
		if err != nil {
			return nil, err
		}
		r.logf("generated %s: %d claims", id, d.NumClaims())
		return &datasetEntry{d: d}, nil
	}
}

// AlgorithmSpec names an algorithm configuration to measure.
type AlgorithmSpec struct {
	// Key is the cache key suffix ("Accu", "TD-AC (F=Accu)",
	// "AccuGenPartition (Max)"...).
	Key string
	// Build constructs a fresh instance. TD-AC instances receive the
	// runner so they can apply scaled-mode clustering caps.
	Build func(r *Runner) algorithms.Algorithm
}

// Std returns the spec of a registry algorithm by canonical name.
func Std(name string) AlgorithmSpec {
	return AlgorithmSpec{
		Key: name,
		Build: func(*Runner) algorithms.Algorithm {
			a, err := algorithms.New(name)
			if err != nil {
				panic(err) // registry names are compile-time constants here
			}
			return a
		},
	}
}

// TDACSpec returns the spec of TD-AC over the named base algorithm.
func TDACSpec(base string) AlgorithmSpec {
	return AlgorithmSpec{
		Key: fmt.Sprintf("TD-AC (F=%s)", base),
		Build: func(r *Runner) algorithms.Algorithm {
			b, err := algorithms.New(base)
			if err != nil {
				panic(err)
			}
			t := core.New(b)
			if !r.Opts.Full {
				// Smoke scale: cap the explored k range and restarts so
				// 124-attribute runs stay fast; full mode follows
				// Algorithm 1 exactly.
				t.MaxK = 24
				t.KMeans.Restarts = 2
			}
			return t
		},
	}
}

// GenPartitionSpec returns the spec of the brute-force baseline.
func GenPartitionSpec(base string, w genpartition.Weighting) AlgorithmSpec {
	return AlgorithmSpec{
		Key: fmt.Sprintf("%sGenPartition (%s)", base, w),
		Build: func(*Runner) algorithms.Algorithm {
			b, err := algorithms.New(base)
			if err != nil {
				panic(err)
			}
			return genpartition.New(b, w)
		},
	}
}

// Measure runs (and caches) one algorithm on one dataset.
func (r *Runner) Measure(datasetID string, spec AlgorithmSpec) (*Measurement, error) {
	key := datasetID + "\x00" + spec.Key
	r.mu.Lock()
	if m, ok := r.runs[key]; ok {
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	d, err := r.Dataset(datasetID)
	if err != nil {
		return nil, err
	}
	alg := spec.Build(r)
	r.logf("running %s on %s ...", spec.Key, datasetID)

	m := &Measurement{Dataset: datasetID, Algorithm: spec.Key}
	switch a := alg.(type) {
	case *core.TDAC:
		out, err := a.Run(d)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", spec.Key, datasetID, err)
		}
		m.Report = metrics.Evaluate(d, out.Truth)
		m.Runtime = out.Runtime
		m.Iterations = out.Iterations
		m.Partition = out.Partition
		m.Silhouette = out.Silhouette
	case *genpartition.GenPartition:
		out, err := a.Run(d)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", spec.Key, datasetID, err)
		}
		m.Report = metrics.Evaluate(d, out.Truth)
		m.Runtime = out.Runtime
		m.Iterations = out.Iterations
		m.Partition = out.Partition
	default:
		res, err := alg.Discover(d)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", spec.Key, datasetID, err)
		}
		m.Report = metrics.Evaluate(d, res.Truth)
		m.Runtime = res.Runtime
		m.Iterations = res.Iterations
	}
	r.logf("  %s on %s: %s (%.3fs)", spec.Key, datasetID, m.Report, m.Runtime.Seconds())

	r.mu.Lock()
	r.runs[key] = m
	r.mu.Unlock()
	return m, nil
}
