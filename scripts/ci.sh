#!/bin/sh
# ci.sh — the full verification gate, runnable locally or from CI.
#
# Checks, in order: formatting, vet, build, the complete test suite under
# the race detector (which exercises the parallel k-sweep and the parallel
# per-group base runs), a one-shot smoke run of the k-sweep benchmark so
# the packed hot path is executed at benchmark scale on every change, a
# short live-fuzz smoke of every fuzz target, and schema validation of the
# committed benchmark report so drift in cmd/tdacbench's output fails CI.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> benchmark smoke (KSweep, 1x)"
go test -run '^$' -bench KSweep -benchtime 1x .

# Go runs one fuzz target per invocation, so smoke each explicitly.
echo "==> fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzReadClaimsCSV$' -fuzztime 10s ./internal/truthdata
go test -run '^$' -fuzz '^FuzzReadJSON$' -fuzztime 10s ./internal/truthdata
go test -run '^$' -fuzz '^FuzzSimilarityInvariants$' -fuzztime 10s ./internal/similarity
go test -run '^$' -fuzz '^FuzzPackedHammingEquivalence$' -fuzztime 10s ./internal/cluster

echo "==> bench report schema (BENCH_tdac.json)"
go run ./cmd/tdacbench -validate BENCH_tdac.json

echo "==> ci OK"
