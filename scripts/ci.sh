#!/bin/sh
# ci.sh — the full verification gate, runnable locally or from CI.
#
# Checks, in order: formatting, vet, build, the complete test suite under
# the race detector (which exercises the parallel k-sweep and the parallel
# per-group base runs), a one-shot smoke run of the k-sweep benchmark so
# the packed hot path is executed at benchmark scale on every change, a
# short live-fuzz smoke of every fuzz target, the differential/metamorphic
# verification harness (cmd/tdac-verify), schema validation of the
# committed benchmark report so drift in cmd/tdacbench's output fails CI,
# and a bench-delta gate so a base-runs performance regression on DS1
# fails CI too.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
# Includes the tdacd server suite: the ingest-while-discovering stress
# test, the engine shutdown tests and the shutdown-racing-compaction
# test only prove anything under the race detector, so they must never
# move out of this invocation.
go test -race ./...

echo "==> crash-recovery matrix (seeded, ~35 crash points incl. failover)"
# The WAL's durability property, end to end: every seeded crash schedule
# (mid-append, mid-fsync, mid-compaction-rename) must recover acked
# state bit-identically. -count=1 defeats the cache so the matrix really
# runs on every CI invocation, and the scenario count is asserted so the
# matrix can never silently shrink.
matrix=$(go test -run '^TestCrashRecoveryMatrix$' -count=1 -v ./internal/server) || {
    echo "$matrix" >&2
    exit 1
}
passed=$(echo "$matrix" | grep -c -- '--- PASS: TestCrashRecoveryMatrix/')
echo "    $passed crash scenarios passed"
[ "$passed" -ge 35 ] || { echo "crash matrix ran only $passed scenarios, want >= 35" >&2; exit 1; }

echo "==> network chaos matrix (seeded faults x cluster hops)"
# The network-failure property, end to end: every netfault class
# (refusal, black hole, latency ramps, resets, slow-loris stalls,
# truncation) on every hop (router->shard, client->router,
# follower->primary) must degrade bounded and clean, heal through
# retries, and reproduce bit-identical discovery once the fault clears.
# The scenario count is asserted so the matrix can never silently
# shrink.
chaos=$(go test -run '^TestNetworkChaosMatrix$' -count=1 -v ./internal/cluster) || {
    echo "$chaos" >&2
    exit 1
}
chaos_passed=$(echo "$chaos" | grep -c -- '--- PASS: TestNetworkChaosMatrix/')
echo "    $chaos_passed chaos scenarios passed"
[ "$chaos_passed" -ge 24 ] || { echo "chaos matrix ran only $chaos_passed scenarios, want >= 24" >&2; exit 1; }

# Static analysis beyond vet, when the tool exists in the environment;
# otherwise exercise the serving packages' benchmarks as a compile+run
# smoke so the fallback still touches the new code paths.
if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck"
    staticcheck ./...
else
    echo "==> staticcheck not installed; bench smoke for serving packages"
    go test -run TestNone -bench . -benchtime 1x ./internal/server ./internal/obs ./cmd/tdacd
fi

echo "==> benchmark smoke (KSweep, 1x)"
go test -run '^$' -bench KSweep -benchtime 1x .

echo "==> verification harness (tdac-verify)"
# The differential/metamorphic/oracle invariant harness (DESIGN.md §11):
# packed kernels vs naive references, HTTP vs direct, WAL replay
# idempotency, brute-force and planted-partition oracles. The invariant
# count is asserted so the harness can never silently shrink.
harness=$(go run ./cmd/tdac-verify) || { echo "$harness" >&2; exit 1; }
echo "$harness" | sed 's/^/    /'
echo "$harness" | grep -q '^29 invariants verified$' || {
    echo "tdac-verify did not verify all 29 invariants" >&2
    exit 1
}

# Go runs one fuzz target per invocation, so smoke each explicitly.
echo "==> fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzReadClaimsCSV$' -fuzztime 10s ./internal/truthdata
go test -run '^$' -fuzz '^FuzzReadJSON$' -fuzztime 10s ./internal/truthdata
go test -run '^$' -fuzz '^FuzzSimilarityInvariants$' -fuzztime 10s ./internal/similarity
go test -run '^$' -fuzz '^FuzzPackedHammingEquivalence$' -fuzztime 10s ./internal/clustering
go test -run '^$' -fuzz '^FuzzWALRecovery$' -fuzztime 10s ./internal/wal
go test -run '^$' -fuzz '^FuzzVerifyInvariants$' -fuzztime 10s ./internal/verify
go test -run '^$' -fuzz '^FuzzFlat$' -fuzztime 10s ./internal/truthdata
go test -run '^$' -fuzz '^FuzzIncrementalAppend$' -fuzztime 10s ./internal/core
go test -run '^$' -fuzz '^FuzzSSERoundTrip$' -fuzztime 10s ./internal/sse

echo "==> bench report schema (BENCH_tdac.json)"
go run ./cmd/tdacbench -validate BENCH_tdac.json

echo "==> bench delta (DS1 vs committed BENCH_tdac.json)"
# Regression gate for the indexed hot path: a fresh DS1 run's base-runs
# phase median must stay within 20% of the committed report's, so an
# accidental slow-down of the per-group base runs fails CI instead of
# landing silently. Three reps give a stable median (a single rep is too
# noisy for a 20% margin); one dataset keeps the step cheap.
delta_out=$(mktemp)
trap 'rm -f "$delta_out"' EXIT
go run ./cmd/tdacbench -reps 3 -configs DS1 -o "$delta_out" -delta BENCH_tdac.json

echo "==> ci OK"
