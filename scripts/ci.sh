#!/bin/sh
# ci.sh — the full verification gate, runnable locally or from CI.
#
# Checks, in order: formatting, vet, build, the complete test suite under
# the race detector (which exercises the parallel k-sweep and the parallel
# per-group base runs), and a one-shot smoke run of the k-sweep benchmark
# so the packed hot path is executed at benchmark scale on every change.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> benchmark smoke (KSweep, 1x)"
go test -run '^$' -bench KSweep -benchtime 1x .

echo "==> ci OK"
