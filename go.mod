module tdac

go 1.22
