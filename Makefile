GO ?= go

.PHONY: all build test race bench ci fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper's tables/figures at smoke scale; see
# bench_test.go for TDAC_FULL=1.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# ci is the full verification gate (fmt check, vet, build, race tests,
# k-sweep benchmark smoke); scripts/ci.sh holds the exact sequence.
ci:
	sh scripts/ci.sh
