GO ?= go

.PHONY: all build test race bench bench-report ci fmt vet verify serve

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper's tables/figures at smoke scale; see
# bench_test.go for TDAC_FULL=1.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-report regenerates BENCH_tdac.json (schema tdac-bench/4): per-phase
# median wall times for the paper configs, per-algorithm indexed-vs-naive
# timings on DS1, and the WAL ingest-overhead section, then re-validates
# the file so a broken write never lands.
bench-report:
	$(GO) run ./cmd/tdacbench -reps 5 -o BENCH_tdac.json
	$(GO) run ./cmd/tdacbench -validate BENCH_tdac.json

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# verify runs the differential/metamorphic/oracle invariant harness
# (internal/verify, DESIGN.md §11): every accelerated path against its
# naive reference, plus the service- and WAL-level invariants.
verify:
	$(GO) run ./cmd/tdac-verify

# serve generates the example exam dataset and starts tdacd against it on
# the default port; Ctrl-C (or SIGTERM) drains gracefully. See README
# "Serving: tdacd" for the curl quickstart.
serve:
	mkdir -p data
	$(GO) run ./cmd/tdac-gen -dataset exam62 -out ./data
	$(GO) run ./cmd/tdacd -addr :8321 \
		-load exam62=./data/exam-62-claims.csv \
		-truth exam62=./data/exam-62-truth.csv

# ci is the full verification gate (fmt check, vet, build, race tests,
# the seeded crash-recovery matrix, k-sweep benchmark smoke, fuzz smoke
# incl. WAL recovery, bench report schema check, base-runs bench-delta
# gate); scripts/ci.sh holds the exact sequence.
ci:
	sh scripts/ci.sh
