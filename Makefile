GO ?= go

.PHONY: all build test race bench bench-report chaos ci fmt vet verify serve cluster

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper's tables/figures at smoke scale; see
# bench_test.go for TDAC_FULL=1.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-report regenerates BENCH_tdac.json (schema tdac-bench/6): per-phase
# median wall times for the paper configs, per-algorithm indexed-vs-naive
# timings on DS1, and the WAL ingest-overhead section, then re-validates
# the file so a broken write never lands.
bench-report:
	$(GO) run ./cmd/tdacbench -reps 5 -o BENCH_tdac.json
	$(GO) run ./cmd/tdacbench -validate BENCH_tdac.json

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# verify runs the differential/metamorphic/oracle invariant harness
# (internal/verify, DESIGN.md §11): every accelerated path against its
# naive reference, plus the service- and WAL-level invariants.
verify:
	$(GO) run ./cmd/tdac-verify

# serve generates the example exam dataset and starts tdacd against it on
# the default port; Ctrl-C (or SIGTERM) drains gracefully. See README
# "Serving: tdacd" for the curl quickstart.
serve:
	mkdir -p data
	$(GO) run ./cmd/tdac-gen -dataset exam62 -out ./data
	$(GO) run ./cmd/tdacd -addr :8321 \
		-load exam62=./data/exam-62-claims.csv \
		-truth exam62=./data/exam-62-truth.csv

# cluster boots a 3-shard demo cluster on one machine: shards s0-s2 on
# :8321-:8323 (s0 durable with a WAL follower on :8331 mirroring it) and
# tdac-router in front on :8320. Ctrl-C tears the whole group down. See
# README "Running a cluster" and DESIGN.md §14.
CLUSTER := s0=http://127.0.0.1:8321+http://127.0.0.1:8331,s1=http://127.0.0.1:8322,s2=http://127.0.0.1:8323
cluster: build
	mkdir -p data/cluster/s0
	@trap 'kill 0' INT TERM; \
	$(GO) run ./cmd/tdacd -addr :8321 -shard-id s0 -cluster "$(CLUSTER)" -data-dir data/cluster/s0 & \
	$(GO) run ./cmd/tdacd -addr :8322 -shard-id s1 -cluster "$(CLUSTER)" & \
	$(GO) run ./cmd/tdacd -addr :8323 -shard-id s2 -cluster "$(CLUSTER)" & \
	$(GO) run ./cmd/tdacd -addr :8331 -follow http://127.0.0.1:8321 -shard-id s0 -cluster "$(CLUSTER)" -data-dir data/cluster/s0-mirror & \
	$(GO) run ./cmd/tdac-router -addr :8320 -cluster "$(CLUSTER)" & \
	wait

# chaos runs the seeded network-fault matrix verbosely under the race
# detector: every netfault class on every cluster hop, plus the
# watcher-survival scenarios (DESIGN.md §15). ci runs the same matrix
# with a pinned scenario-count floor.
chaos:
	$(GO) test -race -v -run '^TestNetworkChaosMatrix$$' -count=1 ./internal/cluster

# ci is the full verification gate (fmt check, vet, build, race tests,
# the seeded crash-recovery and network-chaos matrices, k-sweep
# benchmark smoke, fuzz smoke
# incl. WAL recovery, bench report schema check, base-runs bench-delta
# gate); scripts/ci.sh holds the exact sequence.
ci:
	sh scripts/ci.sh
