package tdac_test

import (
	"context"
	"strings"
	"testing"

	"tdac"
)

// cancelledCtx returns a context that is already cancelled.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestDiscoverContextPromptCancellation(t *testing.T) {
	d := publicDataset(t, 20, 11)
	if _, err := tdac.DiscoverContext(cancelledCtx(), d); err != context.Canceled {
		t.Errorf("DiscoverContext under a cancelled context: %v, want context.Canceled", err)
	}
}

func TestRunContextPromptCancellation(t *testing.T) {
	d := publicDataset(t, 20, 12)
	if _, err := tdac.RunContext(cancelledCtx(), d, "MajorityVote"); err != context.Canceled {
		t.Errorf("RunContext under a cancelled context: %v, want context.Canceled", err)
	}
	// An unknown algorithm must still be reported even when the context is
	// dead: configuration errors win over cancellation.
	if _, err := tdac.RunContext(cancelledCtx(), d, "bogus"); err == context.Canceled || err == nil {
		t.Errorf("RunContext with unknown algorithm: %v, want a configuration error", err)
	}
}

func TestCheckStabilityContextPromptCancellation(t *testing.T) {
	d := publicDataset(t, 20, 13)
	if _, err := tdac.CheckStabilityContext(cancelledCtx(), d, 3); err != context.Canceled {
		t.Errorf("CheckStabilityContext under a cancelled context: %v, want context.Canceled", err)
	}
}

func TestDiscoverContextMatchesDiscover(t *testing.T) {
	d := publicDataset(t, 40, 14)
	plain, err := tdac.Discover(d, tdac.WithBase("MajorityVote"))
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := tdac.DiscoverContext(context.Background(), d, tdac.WithBase("MajorityVote"))
	if err != nil {
		t.Fatal(err)
	}
	if !ctxed.Partition.Equal(plain.Partition) || ctxed.Silhouette != plain.Silhouette {
		t.Errorf("DiscoverContext differs from Discover: (%v, %v) vs (%v, %v)",
			ctxed.Partition, ctxed.Silhouette, plain.Partition, plain.Silhouette)
	}
}

func TestWithWorkersEquivalence(t *testing.T) {
	d := publicDataset(t, 50, 15)
	seq, err := tdac.Discover(d, tdac.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Default worker count (GOMAXPROCS) plus an explicit over-provisioned
	// pool: the sweep must be bit-identical regardless.
	for _, n := range []int{0, 4} {
		par, err := tdac.Discover(d, tdac.WithWorkers(n))
		if err != nil {
			t.Fatal(err)
		}
		if !par.Partition.Equal(seq.Partition) {
			t.Errorf("WithWorkers(%d): partition %v, sequential %v", n, par.Partition, seq.Partition)
		}
		if par.Silhouette != seq.Silhouette {
			t.Errorf("WithWorkers(%d): silhouette %v, sequential %v", n, par.Silhouette, seq.Silhouette)
		}
		for cell, v := range seq.Truth {
			if par.Truth[cell] != v {
				t.Fatalf("WithWorkers(%d): truth[%v] = %q, sequential %q", n, cell, par.Truth[cell], v)
			}
		}
	}
}

func TestOptionValidation(t *testing.T) {
	d := publicDataset(t, 10, 16)
	if _, err := tdac.Discover(d, tdac.WithWorkers(-1)); err == nil {
		t.Error("accepted a negative worker count")
	}
	if _, err := tdac.Discover(d, tdac.WithProjection(0)); err == nil {
		t.Error("accepted a non-positive projection dimension")
	}
	_, err := tdac.Discover(d, tdac.WithProjection(32), tdac.WithSparseAware())
	if err == nil {
		t.Fatal("accepted WithProjection combined with WithSparseAware")
	}
	if !strings.Contains(err.Error(), "WithProjection") || !strings.Contains(err.Error(), "WithSparseAware") {
		t.Errorf("conflict error does not name the options: %v", err)
	}
}

func TestWithProjectionDiscover(t *testing.T) {
	d := publicDataset(t, 40, 17)
	res, err := tdac.Discover(d, tdac.WithProjection(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) == 0 {
		t.Error("projected run produced no truth")
	}
	if res.Partition.Size() != 6 {
		t.Errorf("projected partition covers %d attrs, want 6", res.Partition.Size())
	}
}

func TestCheckStabilityRejectsWithParallel(t *testing.T) {
	d := publicDataset(t, 20, 18)
	_, err := tdac.CheckStability(d, 3, tdac.WithParallel())
	if err == nil {
		t.Fatal("CheckStability silently accepted WithParallel")
	}
	if !strings.Contains(err.Error(), "WithParallel") || !strings.Contains(err.Error(), "WithWorkers") {
		t.Errorf("error should name the rejected option and the alternative: %v", err)
	}
	// WithWorkers, by contrast, is honoured.
	if _, err := tdac.CheckStability(d, 3, tdac.WithWorkers(2)); err != nil {
		t.Errorf("CheckStability rejected WithWorkers: %v", err)
	}
}
