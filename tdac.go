// Package tdac implements TD-AC — Truth Discovery with Attribute
// Clustering (Tossou & Ba, EDBT 2021) — together with the standard truth
// discovery algorithms it builds on and compares against.
//
// Truth discovery takes conflicting claims made by many sources about the
// attributes of real-world objects and predicts which value is true, with
// no prior knowledge of source reliability. When groups of attributes are
// structurally correlated — every source keeps one reliability level
// within a group but different levels across groups — running one
// algorithm over all attributes biases the reliability estimates. TD-AC
// fixes this by abstracting the truth into per-attribute truth vectors,
// clustering them with k-means scored by the silhouette index, and
// running the base algorithm independently on every attribute cluster.
//
// # Quick start
//
//	b := tdac.NewBuilder("my-data")
//	b.Claim("source-1", "object-1", "colour", "red")
//	b.Claim("source-2", "object-1", "colour", "blue")
//	// ... more claims ...
//	ds, err := b.Build()
//	if err != nil { ... }
//	result, err := tdac.Discover(ds, tdac.WithBase("Accu"))
//	if err != nil { ... }
//	fmt.Println(result.Truth)     // predicted value per (object, attribute)
//	fmt.Println(result.Partition) // the attribute partition TD-AC selected
//
// The base algorithm can be any registered name (see Algorithms):
// MajorityVote, TruthFinder, Accu, AccuSim, Depen (Dong et al. 2009),
// Sums, AverageLog, Investment, PooledInvestment (Pasternack & Roth
// 2010), TwoEstimates, ThreeEstimates (Galland et al. 2010), CRH (Li et
// al. 2014) and SimpleLCA (Pasternack & Roth 2013). Base algorithms can
// also be run directly, without the TD-AC wrapper, via Run.
package tdac

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"tdac/internal/algorithms"
	"tdac/internal/core"
	"tdac/internal/metrics"
	"tdac/internal/obs"
	"tdac/internal/partition"
	"tdac/internal/similarity"
	"tdac/internal/truthdata"
)

// Re-exported identifier types of the data model.
type (
	// SourceID identifies a source within a Dataset.
	SourceID = truthdata.SourceID
	// ObjectID identifies an object within a Dataset.
	ObjectID = truthdata.ObjectID
	// AttrID identifies an attribute within a Dataset.
	AttrID = truthdata.AttrID
	// Cell is one (object, attribute) pair with exactly one true value.
	Cell = truthdata.Cell
	// Claim is a single observation by a source about a cell.
	Claim = truthdata.Claim
	// Dataset is the (sources, attributes, objects, claims) bundle all
	// algorithms consume.
	Dataset = truthdata.Dataset
	// Builder assembles a Dataset from string-named claims.
	Builder = truthdata.Builder
	// Stats summarises a dataset (source/object/attribute/observation
	// counts and the data coverage rate).
	Stats = truthdata.Stats
	// Partition is a set partition of a dataset's attributes.
	Partition = partition.Partition
	// Report carries precision, recall, accuracy, F1 and cell accuracy
	// of a prediction against ground truth.
	Report = metrics.Report
)

// Re-exported observability types (see WithStats and WithObserver). A
// RunStats tree carries phase-scoped wall times, per-k clustering
// convergence, per-group base-run cost, distance-cache reuse and
// allocation deltas for one run; Render or String turn it into an
// indented human-readable tree and encoding/json into a stable
// machine-readable shape (the one cmd/tdacbench records).
type (
	// RunStats is the full observation tree of one run.
	RunStats = obs.RunStats
	// PhaseStats is one phase's wall time within a RunStats tree.
	PhaseStats = obs.PhaseStats
	// SweepStats describes one k-sweep: range, workers and per-k records.
	SweepStats = obs.SweepStats
	// KStats records the clustering of one explored cluster count.
	KStats = obs.KStats
	// MatrixStats describes a pairwise distance-matrix build.
	MatrixStats = obs.MatrixStats
	// CacheStats counts distance-matrix reuse across a run.
	CacheStats = obs.CacheStats
	// GroupStats records one per-group base-algorithm run.
	GroupStats = obs.GroupStats
	// MemoryStats holds allocation deltas over a run.
	MemoryStats = obs.MemoryStats
	// Phase identifies one pipeline stage in a RunStats tree.
	Phase = obs.Phase
	// Observer receives phase-completion events while a run is in
	// flight (see WithObserver).
	Observer = obs.Observer
	// Event is one streaming pipeline observation (see WithEvents).
	Event = obs.Event
	// EventKind classifies a streaming Event.
	EventKind = obs.EventKind
	// EventSink receives streaming Events while a run is in flight.
	EventSink = obs.EventSink
)

// The streaming event kinds delivered to a WithEvents sink: phase
// brackets, per-k sweep progress and per-group base-run completions.
const (
	EventPhaseStart = obs.EventPhaseStart
	EventPhaseEnd   = obs.EventPhaseEnd
	EventK          = obs.EventK
	EventGroup      = obs.EventGroup
)

// The pipeline phases observers see, in execution order. A TD-AC
// Discover passes through Index → Reference → TruthVectors →
// DistanceMatrix → KSweep → BaseRuns → Merge; a base-algorithm Run has
// the single Discover phase; CheckStability repeats DistanceMatrix and
// KSweep once per reseeded run.
const (
	PhaseIndex          = obs.PhaseIndex
	PhaseReference      = obs.PhaseReference
	PhaseTruthVectors   = obs.PhaseTruthVectors
	PhaseDistanceMatrix = obs.PhaseDistanceMatrix
	PhaseKSweep         = obs.PhaseKSweep
	PhaseBaseRuns       = obs.PhaseBaseRuns
	PhaseMerge          = obs.PhaseMerge
	PhaseDiscover       = obs.PhaseDiscover
	// PhaseIncrementalSync replaces Index/Reference/TruthVectors and the
	// matrix build on the incremental path (see WithIncremental).
	PhaseIncrementalSync = obs.PhaseIncrementalSync
)

// NewBuilder returns a builder for a dataset with the given name.
func NewBuilder(name string) *Builder { return truthdata.NewBuilder(name) }

// ComputeStats derives Table 8-style statistics, including the DCR.
func ComputeStats(d *Dataset) Stats { return truthdata.ComputeStats(d) }

// ReadClaimsCSV parses "source,object,attribute,value" records.
func ReadClaimsCSV(r io.Reader, name string) (*Dataset, error) {
	return truthdata.ReadClaimsCSV(r, name)
}

// ReadTruthCSV merges "object,attribute,value" ground truth into d.
func ReadTruthCSV(r io.Reader, d *Dataset) error { return truthdata.ReadTruthCSV(r, d) }

// WriteClaimsCSV writes d's claims in the claims CSV format.
func WriteClaimsCSV(w io.Writer, d *Dataset) error { return truthdata.WriteClaimsCSV(w, d) }

// WriteTruthCSV writes d's ground truth in the truth CSV format.
func WriteTruthCSV(w io.Writer, d *Dataset) error { return truthdata.WriteTruthCSV(w, d) }

// ReadJSON deserialises a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) { return truthdata.ReadJSON(r) }

// WriteJSON serialises the full dataset, ground truth included.
func WriteJSON(w io.Writer, d *Dataset) error { return truthdata.WriteJSON(w, d) }

// Algorithms lists the registered base algorithm names.
func Algorithms() []string { return algorithms.Names() }

// Result is the outcome of a TD-AC run: the predicted truth plus the
// partitioning decisions behind it.
type Result struct {
	// Truth maps every claimed cell to its predicted true value.
	Truth map[Cell]string
	// Confidence maps every claimed cell to the confidence score of the
	// predicted value, in the base algorithm's own scale.
	Confidence map[Cell]float64
	// Trust is the final per-source reliability estimate.
	Trust []float64
	// Partition is the attribute partition TD-AC selected; a single
	// group when the dataset has fewer than three attributes.
	Partition Partition
	// Silhouette is the silhouette value of the selected partition.
	Silhouette float64
	// Runtime is the wall-clock duration of the whole run.
	Runtime time.Duration
	// Stats is the observation tree of the run; nil unless WithStats or
	// WithObserver was passed.
	Stats *RunStats
}

// Option configures Discover, DiscoverContext, Run, RunContext,
// CheckStability and CheckStabilityContext. Every entry point accepts
// the same option type and routes it through one shared configuration
// builder; an option an entry point cannot honour is reported as an
// error instead of being silently dropped (Run honours only WithStats
// and WithObserver; CheckStability rejects WithParallel).
type Option func(*config) error

// optSet is a bitmask of which options were explicitly set, so entry
// points can reject the ones they cannot honour by name.
type optSet uint

const (
	optBase optSet = 1 << iota
	optReference
	optKRange
	optSearch
	optParallel
	optWorkers
	optProjection
	optSparseAware
	optSeed
	optStats
	optObserver
	optEvents
	optIncremental
)

var optNames = []struct {
	bit  optSet
	name string
}{
	{optBase, "WithBase"},
	{optReference, "WithReference"},
	{optKRange, "WithKRange"},
	{optSearch, "WithSearch"},
	{optParallel, "WithParallel"},
	{optWorkers, "WithWorkers"},
	{optProjection, "WithProjection"},
	{optSparseAware, "WithSparseAware"},
	{optSeed, "WithSeed"},
	{optStats, "WithStats"},
	{optObserver, "WithObserver"},
	{optEvents, "WithEvents"},
	{optIncremental, "WithIncremental"},
}

// names renders the set bits as a comma-separated option list.
func (s optSet) names() string {
	out := ""
	for _, o := range optNames {
		if s&o.bit != 0 {
			if out != "" {
				out += ", "
			}
			out += o.name
		}
	}
	return out
}

type config struct {
	base        string
	baseOpts    []BaseOption
	reference   string
	refOpts     []BaseOption
	minK        int
	maxK        int
	search      string
	parallel    bool
	masked      bool
	seed        int64
	workers     int
	projectDim  int
	stats       bool
	observer    Observer
	events      EventSink
	incremental *IncrementalState
	set         optSet
}

// apply runs the options over a default config.
func newConfig(opts []Option) (*config, error) {
	cfg := &config{base: "Accu"}
	for _, o := range opts {
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// reject errors when any option in mask was explicitly set — the shared
// "cannot honour" guard of the restricted entry points.
func (c *config) reject(mask optSet, entry, hint string) error {
	if bad := c.set & mask; bad != 0 {
		return fmt.Errorf("tdac: %s cannot honour %s (%s)", entry, bad.names(), hint)
	}
	return nil
}

// recorder builds the run's Recorder: nil (collection off) unless
// WithStats, WithObserver or WithEvents asked for observation.
func (c *config) recorder() *obs.Recorder {
	if !c.stats && c.observer == nil && c.events == nil {
		return nil
	}
	if c.events != nil {
		return obs.NewRecorderEvents(c.observer, c.events)
	}
	return obs.NewRecorder(c.observer)
}

// buildTDAC is the single shared config→core.TDAC wiring used by every
// entry point, so no option can be honoured by one and dropped by
// another.
func buildTDAC(cfg *config) (*core.TDAC, error) {
	if cfg.masked && cfg.projectDim > 0 {
		return nil, fmt.Errorf("tdac: WithProjection cannot be combined with WithSparseAware (the mask markers do not survive projection)")
	}
	if cfg.incremental != nil {
		if cfg.masked {
			return nil, fmt.Errorf("tdac: WithIncremental cannot be combined with WithSparseAware (the incremental geometry is pinned to the dense Hamming pipeline)")
		}
		if cfg.projectDim > 0 {
			return nil, fmt.Errorf("tdac: WithIncremental cannot be combined with WithProjection (projected geometry cannot be patched per attribute row)")
		}
		switch cfg.reference {
		case "":
			// With a maintained state the reference defaults to
			// MajorityVote — the only reference whose truth updates
			// bit-identically under appends — not to the base algorithm.
			cfg.reference = "MajorityVote"
		case "MajorityVote":
		default:
			return nil, fmt.Errorf("tdac: WithIncremental requires a MajorityVote reference, not WithReference(%q)", cfg.reference)
		}
	}
	base, err := algorithms.New(cfg.base, cfg.baseOpts...)
	if err != nil {
		return nil, err
	}
	t := core.New(base)
	if cfg.reference != "" {
		ref, err := algorithms.New(cfg.reference, cfg.refOpts...)
		if err != nil {
			return nil, err
		}
		t.Reference = ref
	}
	t.MinK, t.MaxK = cfg.minK, cfg.maxK
	t.Search = cfg.search
	if cfg.search != "" && cfg.search != core.SearchExhaustive && cfg.masked {
		return nil, fmt.Errorf("tdac: WithSearch(%q) cannot be combined with WithSparseAware (the sublinear strategies warm-start from the dense dendrogram geometry)", cfg.search)
	}
	t.Parallel = cfg.parallel
	t.Masked = cfg.masked
	t.Workers = cfg.workers
	t.ProjectDim = cfg.projectDim
	t.KMeans.Seed = cfg.seed
	return t, nil
}

// BaseOption tunes the algorithm selected by WithBase or WithReference —
// iteration cap, convergence threshold, prior accuracy, value similarity.
// The constructors are WithMaxIterations, WithEpsilon,
// WithInitialAccuracy and WithSimilarity; an option the named algorithm
// cannot honour (WithSimilarity on Accu, anything on MajorityVote) is
// reported as an error by the entry point, never silently dropped.
type BaseOption = algorithms.Option

// SimilarityFunc scores how similar two claimed values are, in [0,1];
// 1 means identical. Implementations must be symmetric. See
// SimilarityByName for the built-in registry.
type SimilarityFunc = similarity.Func

// WithMaxIterations caps the algorithm's update rounds (default 20).
func WithMaxIterations(n int) BaseOption { return algorithms.WithMaxIterations(n) }

// WithEpsilon sets the convergence threshold on the trust vector
// (default 1e-3).
func WithEpsilon(eps float64) BaseOption { return algorithms.WithEpsilon(eps) }

// WithInitialAccuracy seeds the per-source prior of the algorithms that
// have one (TruthFinder's trust, the Accu family's accuracy, Galland's
// error rate, SimpleLCA's honesty), in (0,1).
func WithInitialAccuracy(a float64) BaseOption { return algorithms.WithInitialAccuracy(a) }

// WithSimilarity sets the value-similarity function of the algorithms
// that let similar values support each other (TruthFinder, AccuSim).
func WithSimilarity(f SimilarityFunc) BaseOption { return algorithms.WithSimilarity(f) }

// SimilarityByName resolves a built-in similarity function from its
// registry name — "exact", "levenshtein", "numeric" or "jaccard" — the
// form serving frontends accept; the bool reports whether the name is
// known.
func SimilarityByName(name string) (SimilarityFunc, bool) { return similarity.ByName(name) }

// WithBase selects the base algorithm F (default "Accu", the paper's
// choice), optionally tuned: WithBase("TruthFinder",
// tdac.WithMaxIterations(50), tdac.WithSimilarity(sim)).
func WithBase(name string, opts ...BaseOption) Option {
	return func(c *config) error {
		c.base, c.baseOpts = name, opts
		c.set |= optBase
		return nil
	}
}

// WithReference selects the algorithm producing the reference truth for
// the attribute truth vectors, with the same optional tuning as
// WithBase. Default: the base algorithm itself (including its options).
func WithReference(name string, opts ...BaseOption) Option {
	return func(c *config) error {
		c.reference, c.refOpts = name, opts
		c.set |= optReference
		return nil
	}
}

// WithKRange bounds the cluster counts explored (default [2, |A|-1], as
// in the paper's Algorithm 1). minK must be at least 2; maxK = 0 keeps
// the |A|-1 default upper bound, any other maxK must not be below minK.
// A minK larger than the dataset's |A|-1 is rejected at run time, when
// the attribute count is known.
func WithKRange(minK, maxK int) Option {
	return func(c *config) error {
		if minK < 2 {
			return fmt.Errorf("tdac: WithKRange(%d,%d): minK must be at least 2 — a single cluster has no silhouette to score", minK, maxK)
		}
		if maxK < 0 {
			return fmt.Errorf("tdac: WithKRange(%d,%d): maxK cannot be negative (pass maxK=0 for the |A|-1 default)", minK, maxK)
		}
		if maxK != 0 && maxK < minK {
			return fmt.Errorf("tdac: WithKRange(%d,%d): inverted range, maxK is below minK (pass maxK=0 for the |A|-1 default)", minK, maxK)
		}
		c.minK, c.maxK = minK, maxK
		c.set |= optKRange
		return nil
	}
}

// The k-selection strategies accepted by WithSearch.
const (
	// SearchExhaustive scores every k in the range — the paper's
	// Algorithm 1 sweep and the default.
	SearchExhaustive = core.SearchExhaustive
	// SearchGolden probes the silhouette-vs-k curve with a golden-section
	// bracket and an envelope early stop.
	SearchGolden = core.SearchGolden
	// SearchMDL scans k ascending under an MDL-style stopping rule.
	SearchMDL = core.SearchMDL
)

// WithSearch selects the k-selection strategy of the partition stage
// (default SearchExhaustive, the paper's full sweep over [2, |A|-1]).
// The sublinear strategies — SearchGolden and SearchMDL — build one
// agglomerative dendrogram from the shared distance matrix, warm-start
// every probed k-means from the corresponding dendrogram cut, and probe
// only a few cluster counts instead of all of them: golden-section
// narrowing with an envelope early stop, or an ascending scan under an
// MDL stopping rule. On large attribute sets they cut the number of k
// evaluations by an order of magnitude (see cmd/tdacbench's search
// section) while still selecting the best silhouette among the probed
// ks. Both are deterministic and incremental-safe, but require the
// built-in k-means clusterer and the dense geometry: combining them
// with WithSparseAware is rejected.
func WithSearch(strategy string) Option {
	return func(c *config) error {
		switch strategy {
		case SearchExhaustive, SearchGolden, SearchMDL:
		default:
			return fmt.Errorf("tdac: WithSearch(%q): unknown strategy (known: %q, %q, %q)",
				strategy, SearchExhaustive, SearchGolden, SearchMDL)
		}
		c.search = strategy
		c.set |= optSearch
		return nil
	}
}

// WithParallel runs the base algorithm on the partition's groups
// concurrently (the paper's future-work item (ii)). CheckStability
// rejects this option: it never runs the base algorithm per group, so
// there is nothing for it to parallelise (use WithWorkers to speed up
// its k-sweeps instead).
func WithParallel() Option {
	return func(c *config) error { c.parallel = true; c.set |= optParallel; return nil }
}

// WithWorkers bounds the worker pool of the k-sweep: the independent
// k-means + silhouette evaluations for different cluster counts run on
// up to n goroutines. n = 0 (the default) means runtime.GOMAXPROCS;
// n = 1 forces the sequential sweep. Results are bit-identical for any
// n — every k derives its randomness from the base seed, never from
// scheduling order.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("tdac: WithWorkers(%d): worker count cannot be negative", n)
		}
		c.workers = n
		c.set |= optWorkers
		return nil
	}
}

// WithProjection reduces the attribute truth vectors to dim dimensions
// with a Johnson–Lindenstrauss random projection before clustering — a
// running-time lever for very large |O|·|S|. Projection implies
// Euclidean geometry on the projected vectors and is incompatible with
// WithSparseAware.
func WithProjection(dim int) Option {
	return func(c *config) error {
		if dim <= 0 {
			return fmt.Errorf("tdac: WithProjection(%d): dimension must be positive", dim)
		}
		c.projectDim = dim
		c.set |= optProjection
		return nil
	}
}

// WithSparseAware switches the truth vectors and clustering distance to
// the missing-claim-masked encoding, which helps on low-coverage data
// (the paper's future-work item (i)).
func WithSparseAware() Option {
	return func(c *config) error { c.masked = true; c.set |= optSparseAware; return nil }
}

// WithSeed fixes the k-means seed (default 1; all runs are deterministic
// either way).
func WithSeed(seed int64) Option {
	return func(c *config) error { c.seed = seed; c.set |= optSeed; return nil }
}

// WithStats collects a RunStats observation tree over the run — phase
// wall times, per-k convergence, per-group base-run cost, distance-cache
// reuse and allocation deltas — exposed on the result's Stats field.
// Observation never alters results: a stats-on run is bit-identical to a
// stats-off one (pinned by TestStatsObservationIsInert). The overhead is
// a few time.Now calls per phase, ≤ 2% on the k-sweep benchmark.
func WithStats() Option {
	return func(c *config) error { c.stats = true; c.set |= optStats; return nil }
}

// WithObserver streams phase-completion events to fn while the run is in
// flight (progress reporting, tracing). It implies WithStats: the full
// tree is still collected on the result's Stats field. fn is called in
// phase-completion order from the goroutine finishing the phase, so it
// must be safe for concurrent calls when the pipeline runs parallel
// stages; keep it fast — it runs on the pipeline's critical path.
func WithObserver(fn Observer) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("tdac: WithObserver(nil): observer must not be nil (use WithStats for collection without streaming)")
		}
		c.observer = fn
		c.stats = true
		c.set |= optObserver
		return nil
	}
}

// WithEvents streams fine-grained pipeline events to fn while the run
// is in flight: phase starts and ends, every explored k of the sweep
// with its silhouette, and every finished per-group base run. It is the
// push counterpart of WithStats (which it implies — the full RunStats
// tree is still collected) and feeds the daemon's job event stream.
// Events from parallel stages arrive in completion order, which is
// scheduling-dependent; do not infer determinism from event order.
// Like an Observer, fn runs on the pipeline's critical path and may be
// called concurrently — keep it fast and concurrency-safe. Event
// emission never alters results: an observed run is bit-identical to an
// unobserved one.
func WithEvents(fn EventSink) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("tdac: WithEvents(nil): sink must not be nil")
		}
		c.events = fn
		c.stats = true
		c.set |= optEvents
		return nil
	}
}

// IncrementalState carries TD-AC's discovery prologue — the MajorityVote
// reference tallies, the attribute truth vectors, the packed distance
// geometry — across growing versions of one dataset. Pass the same
// state to successive Discover calls via WithIncremental: when the new
// dataset is an append-extension of the previously discovered one, only
// the cells touched by the appended claims are reprocessed, instead of
// rebuilding everything from scratch. Results are bit-identical to a
// cold run either way (pinned by the incremental-vs-cold invariant and
// FuzzIncrementalAppend); a dataset that is not an extension silently
// falls back to a cold rebuild, so a state is never wrong, at worst not
// faster. A state must not be shared by concurrent Discover calls.
type IncrementalState struct {
	st *core.IncrementalState
}

// NewIncrementalState returns an empty state for WithIncremental; the
// first Discover through it pays the full cold cost and primes it.
func NewIncrementalState() *IncrementalState {
	return &IncrementalState{st: core.NewIncrementalState()}
}

// SnapshotJSON serialises the state's maintained maps (tallies and
// reference truth — the geometry is re-derived on restore) into a
// stable JSON form: equal states marshal byte-identically. It errors on
// a state that has never been primed by a Discover call.
func (st *IncrementalState) SnapshotJSON() ([]byte, error) {
	snap := st.st.Snapshot()
	if snap == nil {
		return nil, fmt.Errorf("tdac: incremental state has not been primed; nothing to snapshot")
	}
	return json.Marshal(snap)
}

// RestoreJSON loads a SnapshotJSON payload taken against exactly
// dataset version d, replacing the state's contents. A payload that is
// torn, malformed or describes any other dataset version returns an
// error and leaves st unchanged; the caller should fall back to a cold
// prime — a bad snapshot costs a rebuild, never a wrong result.
func (st *IncrementalState) RestoreJSON(d *Dataset, raw []byte) error {
	var snap core.StateSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("tdac: decoding incremental state snapshot: %w", err)
	}
	restored, err := core.RestoreState(d, &snap)
	if err != nil {
		return err
	}
	st.st = restored
	return nil
}

// WithIncremental reuses st's maintained prologue for this run (see
// IncrementalState). The incremental geometry is pinned to the default
// dense pipeline: WithSparseAware and WithProjection are rejected, and
// the reference must be MajorityVote — WithReference may name it
// explicitly, and defaults to it (not to the base algorithm) when this
// option is present.
func WithIncremental(st *IncrementalState) Option {
	return func(c *config) error {
		if st == nil || st.st == nil {
			return fmt.Errorf("tdac: WithIncremental(nil): state must come from NewIncrementalState")
		}
		c.incremental = st
		c.set |= optIncremental
		return nil
	}
}

// ValidateOptions checks an option list for well-formedness and mutual
// consistency — unknown algorithm names, invalid ranges, incompatible
// combinations (WithProjection + WithSparseAware) — without running
// anything. Serving frontends use it as a submit-time guard: cmd/tdacd
// rejects a bad request with a 400 instead of enqueueing a job doomed to
// fail.
func ValidateOptions(opts ...Option) error {
	cfg, err := newConfig(opts)
	if err != nil {
		return err
	}
	_, err = buildTDAC(cfg)
	return err
}

// Discover runs TD-AC (Algorithm 1 of the paper) on the dataset. It is
// DiscoverContext with context.Background().
func Discover(d *Dataset, opts ...Option) (*Result, error) {
	return DiscoverContext(context.Background(), d, opts...)
}

// DiscoverContext runs TD-AC (Algorithm 1 of the paper) on the dataset
// under a context. Cancellation aborts the k-sweep at k granularity,
// stops per-group base runs from starting and — for the built-in
// algorithms — interrupts the reference and base runs at their next
// update round; an already-cancelled context returns promptly without
// touching the data.
func DiscoverContext(ctx context.Context, d *Dataset, opts ...Option) (*Result, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	t, err := buildTDAC(cfg)
	if err != nil {
		return nil, err
	}
	t.Recorder = cfg.recorder()
	var out *core.Outcome
	if cfg.incremental != nil {
		out, err = t.RunWithState(ctx, d, cfg.incremental.st)
	} else {
		out, err = t.RunContext(ctx, d)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Truth:      out.Truth,
		Confidence: out.Confidence,
		Trust:      out.Trust,
		Partition:  out.Partition,
		Silhouette: out.Silhouette,
		Runtime:    out.Runtime,
		Stats:      out.Stats,
	}, nil
}

// BaseResult is the outcome of running a base algorithm directly.
type BaseResult struct {
	// Algorithm is the name of the algorithm that ran.
	Algorithm string
	// Truth maps every claimed cell to its predicted true value.
	Truth map[Cell]string
	// Trust is the final per-source reliability estimate.
	Trust []float64
	// Iterations counts the update rounds executed.
	Iterations int
	// Runtime is the wall-clock duration of the run.
	Runtime time.Duration
	// Stats is the observation tree of the run (a single Discover
	// phase); nil unless WithStats or WithObserver was passed.
	Stats *RunStats
}

// Run executes a registered base algorithm by name, without attribute
// partitioning. It is RunContext with context.Background().
func Run(d *Dataset, algorithm string, opts ...Option) (*BaseResult, error) {
	return RunContext(context.Background(), d, algorithm, opts...)
}

// RunContext executes a registered base algorithm by name under a
// context. The built-in algorithms run on the indexed hot path, which
// checks the context at every update round, so a deadline interrupts
// even a slow run mid-algorithm; an already-cancelled context returns
// its error without touching the data. Only WithStats, WithObserver and
// WithBase are honoured here — WithBase must repeat the algorithm name
// and exists to carry BaseOptions (WithMaxIterations and friends) into
// the run; every other option is rejected with an error rather than
// silently ignored.
func RunContext(ctx context.Context, d *Dataset, algorithm string, opts ...Option) (*BaseResult, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.reject(^(optStats | optObserver | optEvents | optBase), "Run",
		"it runs the base algorithm directly, without TD-AC's partitioning; only WithStats, WithObserver, WithEvents and WithBase apply"); err != nil {
		return nil, err
	}
	if cfg.set&optBase != 0 && cfg.base != algorithm {
		return nil, fmt.Errorf("tdac: Run(%q) with WithBase(%q): the names must agree (WithBase carries options for the algorithm Run already names)", algorithm, cfg.base)
	}
	alg, err := algorithms.New(algorithm, cfg.baseOpts...)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec := cfg.recorder()
	rec.Start()
	done := rec.Phase(PhaseDiscover)
	res, err := algorithms.DiscoverContext(ctx, alg, d)
	if err != nil {
		return nil, err
	}
	done()
	return &BaseResult{
		Algorithm:  res.Algorithm,
		Truth:      res.Truth,
		Trust:      res.Trust,
		Iterations: res.Iterations,
		Runtime:    res.Runtime,
		Stats:      rec.Finish(),
	}, nil
}

// Evaluate scores a prediction against the dataset's ground truth using
// the paper's metrics (precision, recall, accuracy, F1 at claim level,
// plus per-cell accuracy).
func Evaluate(d *Dataset, predicted map[Cell]string) Report {
	return metrics.Evaluate(d, predicted)
}

// Merge combines several datasets by matching sources, objects and
// attributes by name; conflicting ground truths or claims are an error.
func Merge(name string, datasets ...*Dataset) (*Dataset, error) {
	return truthdata.Merge(name, datasets...)
}

// FilterSources returns a copy of d keeping only claims of sources
// accepted by keep; source identities are preserved.
func FilterSources(d *Dataset, keep func(SourceID, string) bool) *Dataset {
	return truthdata.FilterSources(d, keep)
}

// WithoutSource returns a copy of d with one source's claims removed —
// the building block of leave-one-source-out influence analysis.
func WithoutSource(d *Dataset, s SourceID) *Dataset { return truthdata.WithoutSource(d, s) }

// FilterObjects returns a copy of d keeping only claims and truths about
// objects accepted by keep.
func FilterObjects(d *Dataset, keep func(ObjectID, string) bool) *Dataset {
	return truthdata.FilterObjects(d, keep)
}

// SplitObjects partitions d's objects into two datasets by fraction, for
// holdout experiments.
func SplitObjects(d *Dataset, frac float64) (*Dataset, *Dataset, error) {
	return truthdata.SplitObjects(d, frac)
}

// SourceAccuracy returns each source's true accuracy on cells with known
// ground truth, plus its evaluable claim count.
func SourceAccuracy(d *Dataset) (acc []float64, n []int) { return metrics.SourceAccuracy(d) }

// Stability reports how consistently TD-AC selects its partition when
// the clustering is reseeded (see CheckStability).
type Stability struct {
	// MeanRandIndex is the mean pairwise Rand index across runs; near 1
	// means the silhouette landscape has one clear optimum.
	MeanRandIndex float64
	// Modal is the most frequently selected partition and ModalShare the
	// fraction of runs selecting it.
	Modal      Partition
	ModalShare float64
	// Silhouettes holds each run's best silhouette value.
	Silhouettes []float64
	// Stats is the observation tree of the whole check — one
	// reference/truth-vectors prologue plus one distance-matrix/k-sweep
	// pair per reseeded run; nil unless WithStats or WithObserver was
	// passed.
	Stats *RunStats
}

// CheckStability reruns TD-AC's partition selection under `runs`
// different clustering seeds and reports agreement — a practical warning
// signal on low-coverage data where the truth vectors are too sparse to
// cluster reliably (the regime of the paper's Figure 5). It is
// CheckStabilityContext with context.Background().
func CheckStability(d *Dataset, runs int, opts ...Option) (*Stability, error) {
	return CheckStabilityContext(context.Background(), d, runs, opts...)
}

// CheckStabilityContext is CheckStability under a context: cancellation
// aborts between reseeded runs and inside each run's k-sweep. It accepts
// the same option set as DiscoverContext, except WithParallel: stability
// checking never runs the base algorithm per group, so that option is
// rejected with an error rather than silently ignored (use WithWorkers
// to parallelise the k-sweeps instead).
func CheckStabilityContext(ctx context.Context, d *Dataset, runs int, opts ...Option) (*Stability, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.reject(optParallel|optIncremental, "CheckStability",
		"it never runs the base algorithm per group; use WithWorkers to parallelise its k-sweeps"); err != nil {
		return nil, err
	}
	t, err := buildTDAC(cfg)
	if err != nil {
		return nil, err
	}
	t.Recorder = cfg.recorder()
	st, err := t.CheckStabilityContext(ctx, d, runs)
	if err != nil {
		return nil, err
	}
	return &Stability{
		MeanRandIndex: st.MeanRandIndex,
		Modal:         st.Modal,
		ModalShare:    st.ModalShare,
		Silhouettes:   st.Silhouettes,
		Stats:         st.Stats,
	}, nil
}

// ValueVotes describes one candidate value of a cell: who claimed it and
// how much trust those sources carry under a given result.
type ValueVotes struct {
	// Value is the claimed value.
	Value string
	// Sources lists the names of the sources claiming it.
	Sources []string
	// TrustSum is the sum of the result's trust scores over Sources
	// (zero when no trust vector is supplied).
	TrustSum float64
	// Chosen marks the value the prediction selected.
	Chosen bool
}

// Inspect explains a prediction: it returns, for one cell, every claimed
// value with its voters and their aggregate trust under the supplied
// trust vector (pass a Result's or BaseResult's Trust; nil is allowed).
// The slice is ordered by descending vote count, ties by value. Useful
// for auditing why an algorithm preferred one value over another.
//
// Lookups go through the dataset's cached cell index, so auditing costs
// O(votes of the cell) per call instead of a linear scan of every claim;
// the first Inspect on a dataset compiles the index (see the caveat on
// mutating a dataset after that). Duplicate identical claims collapse to
// a single vote, as everywhere else in the evaluation.
func Inspect(d *Dataset, cell Cell, predicted map[Cell]string, trust []float64) []ValueVotes {
	ix := d.Index()
	ci, ok := ix.CellIdx[cell]
	if !ok {
		return nil
	}
	cc := &ix.Cells[ci]
	chosen := predicted[cell]
	out := make([]ValueVotes, 0, len(cc.Values))
	for vi, val := range cc.Values {
		v := ValueVotes{
			Value:   val,
			Chosen:  val == chosen,
			Sources: make([]string, 0, len(cc.Voters[vi])),
		}
		for _, s := range cc.Voters[vi] {
			v.Sources = append(v.Sources, d.SourceName(s))
			if int(s) < len(trust) {
				v.TrustSum += trust[s]
			}
		}
		sort.Strings(v.Sources)
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Sources) != len(out[j].Sources) {
			return len(out[i].Sources) > len(out[j].Sources)
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// AttrReport is the per-attribute slice of an evaluation (see
// EvaluatePerAttribute).
type AttrReport = metrics.AttrReport

// EvaluatePerAttribute breaks an evaluation down by attribute — the
// natural view for structurally correlated data, where whole attribute
// groups succeed or fail together.
func EvaluatePerAttribute(d *Dataset, predicted map[Cell]string) []AttrReport {
	return metrics.PerAttribute(d, predicted)
}
