package client

import (
	"context"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"tdac/internal/exam"
	"tdac/internal/server"
)

// watchServer is e2eServer but also hands back the httptest frontend,
// whose CloseClientConnections severs live streams mid-flight.
func watchServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	c, err := New(ts.URL, WithRetry(Retry{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, c
}

// TestEndToEndWatchJobSurvivesKilledConnections is the kill-mid-stream
// e2e: the watcher's connection is severed right after its first frame
// (and again after the next one), forcing WatchJob to reconnect with
// Last-Event-ID. The consumer must still observe every event exactly
// once — consecutive stream ids with no gap or duplicate — ending with
// the terminal result.
func TestEndToEndWatchJobSurvivesKilledConnections(t *testing.T) {
	s, ts, c := watchServer(t, server.Config{Workers: 1, QueueSize: 8, EventHeartbeat: 20 * time.Millisecond})
	d, err := exam.Generate(exam.Config{Attrs: 62, Students: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Create("exam", d); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	job, err := c.Discover(ctx, "exam", DiscoverRequest{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.WatchJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	kills := 0
	for ev := range ch {
		if ev.Err != nil {
			t.Fatalf("watch error after %d events: %v", len(events), ev.Err)
		}
		events = append(events, ev)
		// Sever every live connection after each of the first two
		// frames; the watcher must resume, not restart or hang.
		if kills < 2 {
			kills++
			ts.CloseClientConnections()
		}
	}
	if len(events) < 3 {
		t.Fatalf("watched only %d events; want at least queued/running/done", len(events))
	}

	// Exactly-once delivery across the kills: ids are consecutive.
	// (An empty id would mean the poll fallback synthesized the terminal
	// event — the job finished while disconnected — which is a legal
	// outcome for a watcher but means the kill missed the stream; the
	// 20ms heartbeat makes that window effectively unhittable here.)
	next := 0
	for i, ev := range events {
		if ev.ID == "" {
			if i != len(events)-1 {
				t.Fatalf("event %d has no id and is not the synthesized terminal", i)
			}
			break
		}
		n, err := strconv.Atoi(ev.ID)
		if err != nil {
			t.Fatalf("event %d id %q is not a sequence number", i, ev.ID)
		}
		if next == 0 {
			next = n
		}
		if n != next {
			t.Fatalf("event %d has id %d, want %d (gap or duplicate across resume)", i, n, next)
		}
		next++
	}

	// The stream carried pipeline progress, not just lifecycle frames.
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Name]++
	}
	if kinds["state"] < 3 {
		t.Errorf("saw %d state frames, want >= 3 (queued, running, done): %v", kinds["state"], kinds)
	}
	if kinds["phase-start"] == 0 || kinds["k"] == 0 {
		t.Errorf("no pipeline progress frames on a real run: %v", kinds)
	}

	last := events[len(events)-1]
	if last.Job == nil || !last.Job.Terminal() || last.Job.State != "done" {
		t.Fatalf("final event is not a terminal done state: %+v", last)
	}
	if last.Job.Result == nil || len(last.Job.Result.Truth) == 0 {
		t.Fatalf("terminal event carries no result: %+v", last.Job)
	}
	polled, err := c.GetJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if polled.State != last.Job.State || len(polled.Result.Truth) != len(last.Job.Result.Truth) {
		t.Errorf("terminal event diverges from poll: stream %s/%d cells, poll %s/%d cells",
			last.Job.State, len(last.Job.Result.Truth), polled.State, len(polled.Result.Truth))
	}

	if _, err := c.WatchJob(ctx, "no-such-job"); err == nil {
		t.Error("WatchJob on an unknown id did not fail synchronously")
	}
}

// TestEndToEndWatchFinishedJob: watching an already-finished job
// replays its whole backlog and closes — the late watcher still gets
// the full story.
func TestEndToEndWatchFinishedJob(t *testing.T) {
	_, _, c := watchServer(t, server.Config{Workers: 1, QueueSize: 8})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, "d", seedClaims(), nil); err != nil {
		t.Fatal(err)
	}
	job, err := c.Run(ctx, "d", DiscoverRequest{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" {
		t.Fatalf("job = %+v", job)
	}
	ch, err := c.WatchJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range ch {
		if ev.Err != nil {
			t.Fatalf("watch error: %v", ev.Err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("replayed %d events, want the full backlog", len(events))
	}
	last := events[len(events)-1]
	if last.Job == nil || last.Job.State != "done" || last.Job.Result == nil {
		t.Fatalf("replay did not end with the terminal result: %+v", last)
	}
}
