package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"tdac/internal/deadline"
	"tdac/internal/sse"
)

// Event is one frame of a job's event stream (see WatchJob).
type Event struct {
	// ID is the frame's stream sequence number; WatchJob tracks it
	// internally to resume reconnections exactly where they left off.
	ID string
	// Name is the event kind: "state" for lifecycle transitions (the
	// last one is terminal), or a pipeline progress kind such as
	// "phase-start", "phase-end", "k" and "group".
	Name string
	// Data is the frame's raw JSON payload.
	Data json.RawMessage
	// Job is the decoded job view, set on "state" frames only. The
	// final state frame carries the full result.
	Job *Job
	// Err is set on the last event of a stream that ended abnormally —
	// the job disappeared from the server's bounded history before a
	// terminal frame was observed, or the payload failed to decode.
	Err error
}

// WatchJob streams a job's lifecycle and progress events until the job
// reaches a terminal state. The returned channel delivers events in
// stream order and is closed after the terminal "state" event (or after
// a single Err-carrying event if the stream ends abnormally). Dropped
// connections are transparently retried and resumed via Last-Event-ID,
// so a consumer never sees a gap or a duplicate; if the job finished
// while the watcher was disconnected, a terminal event synthesized from
// a poll is delivered instead. Cancel ctx to stop watching; the job
// itself keeps running (use CancelJob for that).
func (c *Client) WatchJob(ctx context.Context, id string) (<-chan Event, error) {
	// Fail fast on unknown jobs: a watch on a never-submitted id should
	// error out synchronously, not emit asynchronously.
	if _, err := c.GetJob(ctx, id); err != nil {
		return nil, err
	}
	ch := make(chan Event, 16)
	go c.watchLoop(ctx, id, ch)
	return ch, nil
}

// streamHTTP returns the transport used for the long-lived stream: the
// configured client minus its overall Timeout, which would sever an
// idle watch mid-job. (Reconnect-and-resume would recover even then,
// but there is no reason to churn.)
func (c *Client) streamHTTP() *http.Client {
	return &http.Client{Transport: c.http.Transport, Jar: c.http.Jar}
}

// watchConnect dials the event stream for one reconnect attempt. Every
// attempt starts over at c.base and re-resolves from there — following
// at most one 421 owner redirect — rather than reusing a previously
// resolved shard URL. That re-resolution is what lets a watch survive a
// failover: when the primary dies mid-stream and its follower is
// promoted, the next retry lands on the router's new target instead of
// pinning the dead primary forever.
func (c *Client) watchConnect(ctx context.Context, httpc *http.Client, id, lastID string) (*http.Response, error) {
	target := c.base
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			target+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
		if err != nil {
			return nil, fmt.Errorf("client: building watch request: %w", err)
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		deadline.Stamp(req.Header, ctx)
		resp, err := httpc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusMisdirectedRequest && hop == 0 {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if owner := ownerFromMisdirect(data); owner != "" {
				target = owner
				continue
			}
			return nil, fmt.Errorf("client: watch job %s: misdirected with no owner", id)
		}
		return resp, nil
	}
}

func (c *Client) watchLoop(ctx context.Context, id string, ch chan<- Event) {
	defer close(ch)
	emit := func(ev Event) bool {
		select {
		case ch <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	// fallback polls the job once after a dropped stream: finished →
	// synthesize the terminal event the watcher missed; vanished → the
	// job was evicted before we saw its result.
	fallback := func() bool {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			var ae *APIError
			if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
				emit(Event{Err: fmt.Errorf("client: job %s disappeared before its terminal event: %w", id, err)})
				return true
			}
			return false // transient; reconnect
		}
		if job.Terminal() {
			raw, _ := json.Marshal(job)
			emit(Event{Name: "state", Data: raw, Job: job})
			return true
		}
		return false
	}

	httpc := c.streamHTTP()
	lastID := ""
	attempt := 0
	for {
		if ctx.Err() != nil {
			return
		}
		if attempt > 0 {
			if c.sleep(ctx, c.backoff(min(attempt, 8), nil)) != nil {
				return
			}
		}
		attempt++
		resp, err := c.watchConnect(ctx, httpc, id, lastID)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if fallback() {
				return
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound && fallback() {
				return
			}
			if !retryStatus(resp.StatusCode) {
				emit(Event{Err: fmt.Errorf("client: watch job %s: HTTP %d", id, resp.StatusCode)})
				return
			}
			continue
		}

		r := sse.NewReader(resp.Body)
		for {
			frame, err := r.Next()
			if err != nil {
				resp.Body.Close()
				if err != io.EOF {
					break // torn mid-frame; reconnect and resume
				}
				// Clean end of stream: either we saw the terminal frame
				// (handled below, never reaches here), or the server
				// evicted us / drained; resume or fall back.
				break
			}
			attempt = 0 // a healthy stream resets the backoff
			ev := Event{ID: frame.ID, Name: frame.Name, Data: json.RawMessage(frame.Data)}
			if frame.Name == "state" {
				job := new(Job)
				if jerr := json.Unmarshal([]byte(frame.Data), job); jerr != nil {
					resp.Body.Close()
					emit(Event{Err: fmt.Errorf("client: decoding state frame: %w", jerr)})
					return
				}
				ev.Job = job
			}
			if !emit(ev) {
				resp.Body.Close()
				return
			}
			if frame.ID != "" {
				lastID = frame.ID
			}
			if ev.Job != nil && ev.Job.Terminal() {
				resp.Body.Close()
				return
			}
		}
		if fallback() {
			return
		}
	}
}
