package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, h http.Handler) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetry(Retry{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func TestRetriesTransientRejections(t *testing.T) {
	var calls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"job queue is full"}`))
			return
		}
		w.Write([]byte(`{"id":"job-1","state":"queued"}`))
	}))
	job, err := c.Discover(context.Background(), "d", DiscoverRequest{})
	if err != nil {
		t.Fatalf("Discover after 429s: %v", err)
	}
	if job.ID != "job-1" || calls.Load() != 3 {
		t.Fatalf("job=%+v calls=%d", job, calls.Load())
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"shutting down"}`))
	}))
	_, err := c.GetJob(context.Background(), "job-1")
	if err == nil {
		t.Fatal("expected an error")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 APIError", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want MaxAttempts = 4", calls.Load())
	}
}

func TestDefinitiveErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown job"}`))
	}))
	_, err := c.GetJob(context.Background(), "job-404")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d; a 404 must not be retried", calls.Load())
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var first, second time.Time
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			first = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"busy"}`))
		default:
			second = time.Now()
			w.Write([]byte(`{"id":"job-1","state":"queued"}`))
		}
	}))
	// MaxDelay is 20ms, so the 1s hint must be capped — the call should
	// finish quickly but still wait a bounded, positive amount.
	start := time.Now()
	if _, err := c.GetJob(context.Background(), "job-1"); err != nil {
		t.Fatal(err)
	}
	if gap := second.Sub(first); gap < 15*time.Millisecond {
		t.Fatalf("retry after %v, want ≥ capped Retry-After (20ms - scheduling slop)", gap)
	}
	if total := time.Since(start); total > 5*time.Second {
		t.Fatalf("Retry-After cap ignored; call took %v", total)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"busy"}`))
	}))
	c.retry.MaxDelay = time.Hour // don't cap the server's 30s hint
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.GetJob(ctx, "job-1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored context cancellation")
	}
}

func TestNonIdempotentCallsDontRetryTransportErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// Kill the connection mid-response: the client cannot know
		// whether the batch was applied.
		hj, _ := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(Retry{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(context.Background(), "d", []Claim{{Source: "s", Object: "o", Attribute: "a", Value: "v"}}, nil); err == nil {
		t.Fatal("expected a transport error")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d; ambiguous ingest failures must not be retried", calls.Load())
	}
}

func TestDiscoverRetriesTransportErrorsViaIdempotencyKey(t *testing.T) {
	var calls atomic.Int32
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req DiscoverRequest
		if err := jsonDecode(r, &req); err != nil {
			t.Errorf("decoding: %v", err)
		}
		keys = append(keys, req.Key)
		if calls.Add(1) == 1 {
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Write([]byte(`{"id":"job-1","state":"queued"}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(Retry{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Discover(context.Background(), "d", DiscoverRequest{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if job.ID != "job-1" {
		t.Fatalf("job = %+v", job)
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("keys = %q; retries must reuse one generated idempotency key", keys)
	}
}

func TestTerminalConflict(t *testing.T) {
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"job \"job-1\" is already terminal","state":"done"}`))
	}))
	_, err := c.CancelJob(context.Background(), "job-1")
	state, ok := IsTerminalConflict(err)
	if !ok || state != "done" {
		t.Fatalf("IsTerminalConflict(%v) = %q, %t; want done, true", err, state, ok)
	}
}

func TestRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"ftp://x", "://", "localhost:8321"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) succeeded", bad)
		}
	}
}

func jsonDecode(r *http.Request, out any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(out)
}

// TestFollowsMisdirectToOwner pins the 421 hop: a shard that does not
// own the dataset names its owner, and the client re-issues there —
// per attempt, never caching the owner across calls.
func TestFollowsMisdirectToOwner(t *testing.T) {
	var ownerCalls atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ownerCalls.Add(1)
		w.Write([]byte(`{"name":"d","version":3}`))
	}))
	defer owner.Close()

	var wrongCalls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wrongCalls.Add(1)
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(map[string]string{
			"error": "dataset \"d\" is owned by shard \"s1\", not \"s0\"",
			"shard": "s1",
			"owner": owner.URL,
		})
	}))
	for i := 0; i < 2; i++ {
		info, err := c.GetDataset(context.Background(), "d")
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if info.Version != 3 {
			t.Fatalf("call %d: info = %+v, want the owner's answer", i, info)
		}
	}
	// Both calls started at the configured base: resolution is never
	// cached, so a later reshuffle re-routes naturally.
	if wrongCalls.Load() != 2 || ownerCalls.Load() != 2 {
		t.Fatalf("wrong=%d owner=%d, want 2 and 2", wrongCalls.Load(), ownerCalls.Load())
	}
}

// TestMisdirectLoopFailsFast: two shards pointing at each other must
// not bounce forever — one hop, then the 421 surfaces.
func TestMisdirectLoopFailsFast(t *testing.T) {
	var a, b *httptest.Server
	mis := func(other func() string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusMisdirectedRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "not mine", "owner": other()})
		}
	}
	a = httptest.NewServer(mis(func() string { return b.URL }))
	defer a.Close()
	b = httptest.NewServer(mis(func() string { return a.URL }))
	defer b.Close()
	c, err := New(a.URL, WithRetry(Retry{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.GetDataset(context.Background(), "d")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusMisdirectedRequest {
		t.Fatalf("err = %v, want surfaced 421", err)
	}
}

func TestRetryAfterParsesBothForms(t *testing.T) {
	hdr := func(v string) *http.Response {
		resp := &http.Response{Header: http.Header{}}
		if v != "" {
			resp.Header.Set("Retry-After", v)
		}
		return resp
	}
	cases := []struct {
		name  string
		value string
		min   time.Duration
		max   time.Duration
	}{
		{"absent", "", 0, 0},
		{"seconds", "120", 120 * time.Second, 120 * time.Second},
		{"zero seconds", "0", 0, 0},
		{"negative seconds", "-5", 0, 0},
		{"http date ahead", time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat), 80 * time.Second, 90 * time.Second},
		{"http date past", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, 0},
		{"rfc850 date ahead", time.Now().Add(90 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 80 * time.Second, 90 * time.Second},
		{"garbage", "soon", 0, 0},
		{"float seconds", "1.5", 0, 0},
		{"overflowing junk", "99999999999999999999999999", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := retryAfter(hdr(tc.value))
			if got < tc.min || got > tc.max {
				t.Fatalf("retryAfter(%q) = %v, want in [%v, %v]", tc.value, got, tc.min, tc.max)
			}
		})
	}
}

func TestHonorsRetryAfterHTTPDate(t *testing.T) {
	var calls atomic.Int32
	var first, second time.Time
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			first = time.Now()
			w.Header().Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"busy"}`))
		default:
			second = time.Now()
			w.Write([]byte(`{"id":"job-1","state":"queued"}`))
		}
	}))
	// The one-hour date hint must be capped at MaxDelay (20ms) just like
	// the seconds form, not slept in full.
	if _, err := c.GetJob(context.Background(), "job-1"); err != nil {
		t.Fatal(err)
	}
	if gap := second.Sub(first); gap < 15*time.Millisecond || gap > 5*time.Second {
		t.Fatalf("retry gap %v, want roughly the 20ms MaxDelay cap", gap)
	}
}

// TestClientStampsDeadlineHeader pins the first half of deadline
// propagation: a context deadline becomes an X-Tdac-Deadline budget on
// the wire, and contexts without deadlines add no header.
func TestClientStampsDeadlineHeader(t *testing.T) {
	headers := make(chan string, 1)
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers <- r.Header.Get("X-Tdac-Deadline")
		w.Write([]byte(`{"id":"job-1","state":"queued"}`))
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.GetJob(ctx, "job-1"); err != nil {
		t.Fatal(err)
	}
	ms, err := strconv.Atoi(<-headers)
	if err != nil {
		t.Fatalf("X-Tdac-Deadline not an integer: %v", err)
	}
	if ms <= 0 || ms > 30_000 {
		t.Fatalf("stamped budget %dms, want in (0, 30000]", ms)
	}

	if _, err := c.GetJob(context.Background(), "job-1"); err != nil {
		t.Fatal(err)
	}
	if h := <-headers; h != "" {
		t.Fatalf("deadline-free context stamped X-Tdac-Deadline=%q", h)
	}
}
