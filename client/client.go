// Package client is the Go client for a tdacd truth-discovery server.
// It wraps the HTTP/JSON API with context-aware retries: transient
// failures (429, 503, connection errors) back off exponentially with
// full jitter, Retry-After headers are honored, and job submission is
// made safe to retry by attaching an idempotency key the server
// deduplicates on — a resubmitted discovery returns the original job
// instead of enqueueing a second run. See README.md "Operating tdacd".
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdac/internal/deadline"
)

// Retry tunes the backoff schedule. The zero value means "use the
// defaults" (5 attempts, 100ms base, 5s cap).
type Retry struct {
	// MaxAttempts bounds tries per call, first attempt included.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule: the nth retry waits a
	// uniformly jittered duration in (0, BaseDelay·2ⁿ].
	BaseDelay time.Duration
	// MaxDelay caps a single wait, including server-sent Retry-After.
	MaxDelay time.Duration
}

func (r Retry) withDefaults() Retry {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 5
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 100 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 5 * time.Second
	}
	return r
}

// Client talks to one tdacd server. Safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	retry Retry

	mu  sync.Mutex
	rng *mrand.Rand // jitter; guarded by mu
}

// Option customises New.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// servers). The default is a client with a 30s overall timeout.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetry replaces the retry schedule.
func WithRetry(r Retry) Option { return func(c *Client) { c.retry = r.withDefaults() } }

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8321").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	c := &Client{
		base:  strings.TrimRight(u.String(), "/"),
		http:  &http.Client{Timeout: 30 * time.Second},
		retry: Retry{}.withDefaults(),
		rng:   mrand.New(mrand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// APIError is a non-2xx response decoded from the server's
// {"error": "..."} body.
type APIError struct {
	Status  int
	Message string
	// State is set on 409 job-cancel conflicts: the job's terminal state.
	State string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tdacd: %s (HTTP %d)", e.Message, e.Status)
}

// IsTerminalConflict reports whether err is the 409 a DELETE on an
// already-finished job returns, and if so that job's terminal state.
func IsTerminalConflict(err error) (state string, ok bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusConflict && ae.State != "" {
		return ae.State, true
	}
	return "", false
}

// ---- wire types --------------------------------------------------------

// Claim is one (source, object, attribute, value) observation.
type Claim struct {
	Source    string `json:"source"`
	Object    string `json:"object"`
	Attribute string `json:"attribute"`
	Value     string `json:"value"`
}

// Truth is one ground-truth cell.
type Truth struct {
	Object    string `json:"object"`
	Attribute string `json:"attribute"`
	Value     string `json:"value"`
}

// DatasetInfo summarises a registered dataset version.
type DatasetInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Sources int    `json:"sources"`
	Objects int    `json:"objects"`
	Attrs   int    `json:"attributes"`
	Claims  int    `json:"claims"`
	Truths  int    `json:"truths"`
}

// DiscoverRequest configures a discovery job; zero values take the
// server's defaults (TD-AC mode, Accu base algorithm).
type DiscoverRequest struct {
	Mode        string `json:"mode,omitempty"`
	Algorithm   string `json:"algorithm,omitempty"`
	Reference   string `json:"reference,omitempty"`
	KMin        int    `json:"k_min,omitempty"`
	KMax        int    `json:"k_max,omitempty"`
	Parallel    bool   `json:"parallel,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	SparseAware bool   `json:"sparse_aware,omitempty"`
	Projection  int    `json:"projection,omitempty"`
	Seed        *int64 `json:"seed,omitempty"`
	// Incremental asks the server to reuse its per-dataset incremental
	// discovery state: successive discoveries over a growing dataset pay
	// only for the appended claims, with results bit-identical to a cold
	// run. TD-AC mode only.
	Incremental bool `json:"incremental,omitempty"`
	TimeoutMS   int  `json:"timeout_ms,omitempty"`
	// Key is the idempotency key. Leave empty: Discover generates one,
	// which is what makes its retries safe.
	Key string `json:"key,omitempty"`
}

// Job is the server's view of a submitted discovery.
type Job struct {
	ID        string     `json:"id"`
	Dataset   string     `json:"dataset"`
	Snapshot  int        `json:"snapshot_version"`
	Mode      string     `json:"mode"`
	Algorithm string     `json:"algorithm"`
	State     string     `json:"state"`
	Enqueued  time.Time  `json:"enqueued_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *Result    `json:"result,omitempty"`
}

// Terminal reports whether the job has stopped moving.
func (j *Job) Terminal() bool {
	switch j.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// Result is a finished discovery: per-cell truth and per-source trust.
type Result struct {
	Algorithm  string       `json:"algorithm"`
	Silhouette *float64     `json:"silhouette,omitempty"`
	Partition  [][]string   `json:"partition,omitempty"`
	Iterations int          `json:"iterations,omitempty"`
	RuntimeMS  float64      `json:"runtime_ms"`
	Truth      []CellValue  `json:"truth"`
	Trust      []TrustValue `json:"trust"`
}

// CellValue is one discovered (object, attribute) → value cell.
type CellValue struct {
	Object     string   `json:"object"`
	Attribute  string   `json:"attribute"`
	Value      string   `json:"value"`
	Confidence *float64 `json:"confidence,omitempty"`
}

// TrustValue is one source's final trust score.
type TrustValue struct {
	Source string  `json:"source"`
	Trust  float64 `json:"trust"`
}

// ---- API calls ---------------------------------------------------------

// CreateDataset registers an empty dataset. Not retried on transport
// errors (a lost response could mask an AlreadyExists on the retry);
// 429/503 rejections are retried since nothing was applied.
func (c *Client) CreateDataset(ctx context.Context, name string) (*DatasetInfo, error) {
	var info DatasetInfo
	err := c.call(ctx, http.MethodPost, "/v1/datasets", map[string]string{"name": name}, &info, false)
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// GetDataset fetches one dataset's stats. Safe to retry.
func (c *Client) GetDataset(ctx context.Context, name string) (*DatasetInfo, error) {
	var info DatasetInfo
	err := c.call(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil, &info, true)
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// Ingest appends a batch of claims (and optional truth) to a dataset,
// returning the new version. Ingestion is not idempotent, so transport
// errors after the request may have been applied are NOT retried —
// only clean 429/503 rejections are.
func (c *Client) Ingest(ctx context.Context, dataset string, claims []Claim, truth []Truth) (*DatasetInfo, error) {
	var info DatasetInfo
	body := map[string]any{"claims": claims}
	if len(truth) > 0 {
		body["truth"] = truth
	}
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/claims"
	if err := c.call(ctx, http.MethodPost, path, body, &info, false); err != nil {
		return nil, err
	}
	return &info, nil
}

// Discover submits a discovery job. When req.Key is empty a random
// idempotency key is attached first, making the whole call — transport
// errors included — safe to retry: the server returns the already-
// submitted job instead of enqueueing a duplicate.
func (c *Client) Discover(ctx context.Context, dataset string, req DiscoverRequest) (*Job, error) {
	if req.Key == "" {
		req.Key = newKey()
	}
	var job Job
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/discover"
	if err := c.call(ctx, http.MethodPost, path, req, &job, true); err != nil {
		return nil, err
	}
	return &job, nil
}

// GetJob polls one job. Safe to retry.
func (c *Client) GetJob(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.call(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job, true); err != nil {
		return nil, err
	}
	return &job, nil
}

// CancelJob cancels a queued or running job. Cancelling a job that
// already finished returns an *APIError with status 409 whose State
// field carries the terminal state (see IsTerminalConflict).
func (c *Client) CancelJob(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.call(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &job, true); err != nil {
		return nil, err
	}
	return &job, nil
}

// Wait polls a job until it is terminal or ctx ends, whichever comes
// first. poll ≤ 0 defaults to 250ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Run is the convenience loop: submit and wait.
func (c *Client) Run(ctx context.Context, dataset string, req DiscoverRequest) (*Job, error) {
	job, err := c.Discover(ctx, dataset, req)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, job.ID, 0)
}

// ---- transport ---------------------------------------------------------

// retryStatus reports whether an HTTP status is a transient rejection:
// the server refused the request without applying it.
func retryStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// call performs one API request with the retry schedule. idempotent
// additionally allows retrying after transport errors, where the
// request may or may not have reached the server.
func (c *Client) call(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return err
			}
		}
		err := c.do(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var ae *APIError
		switch {
		case errors.As(err, &ae):
			if !retryStatus(ae.Status) {
				return err // a definitive answer; retrying cannot change it
			}
		case ctx.Err() != nil:
			return err
		case !idempotent:
			return err // ambiguous transport failure on a non-idempotent call
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// do performs a single HTTP exchange. Every exchange starts at c.base
// — owner resolution is per-attempt and never cached, so after a
// cluster reshuffle or failover the next retry re-resolves through the
// router instead of pinning a stale shard.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	return c.doAt(ctx, c.base, method, path, body, out, true)
}

// doAt performs one exchange against a specific base URL. followOwner
// permits one hop on a 421 Misdirected Request: a shard that does not
// own the dataset names its owner, and the call is re-issued there —
// once, so two misconfigured shards pointing at each other fail fast
// instead of looping.
func (c *Client) doAt(ctx context.Context, base, method, path string, body []byte, out any, followOwner bool) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	deadline.Stamp(req.Header, ctx)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode == http.StatusMisdirectedRequest && followOwner {
		if owner := ownerFromMisdirect(data); owner != "" {
			return c.doAt(ctx, owner, method, path, body, out, false)
		}
	}
	if resp.StatusCode >= 300 {
		ae := &APIError{Status: resp.StatusCode, Message: http.StatusText(resp.StatusCode)}
		var decoded struct {
			Error string `json:"error"`
			State string `json:"state"`
		}
		if json.Unmarshal(data, &decoded) == nil && decoded.Error != "" {
			ae.Message = decoded.Error
			ae.State = decoded.State
		}
		if ra := retryAfter(resp); ra > 0 {
			// Smuggle the server's hint to backoff via the error chain.
			return &retryAfterError{APIError: ae, after: ra}
		}
		return ae
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// ownerFromMisdirect extracts the owning shard's URL from a 421 body
// ({"error": ..., "shard": id, "owner": url}), "" when absent.
func ownerFromMisdirect(data []byte) string {
	var mis struct {
		Owner string `json:"owner"`
	}
	if json.Unmarshal(data, &mis) != nil {
		return ""
	}
	return strings.TrimRight(mis.Owner, "/")
}

// retryAfterError carries a server-sent Retry-After alongside the API
// error. errors.As still finds the *APIError.
type retryAfterError struct {
	*APIError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.APIError }

// retryAfter parses a Retry-After header in either RFC 9110 form:
// delay-seconds ("120") or an HTTP-date ("Fri, 08 Aug 2026 12:00:00
// GMT"). Past dates and negative delays clamp to 0, and anything
// unparseable is treated as absent rather than failing the response.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		return max(time.Until(at), 0)
	}
	return 0
}

// backoff computes the wait before the given (1-based) retry attempt:
// the server's Retry-After when sent, otherwise full-jitter
// exponential backoff, both capped at MaxDelay.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var rae *retryAfterError
	if errors.As(lastErr, &rae) {
		return min(rae.after, c.retry.MaxDelay)
	}
	ceil := time.Duration(float64(c.retry.BaseDelay) * math.Pow(2, float64(attempt-1)))
	ceil = min(ceil, c.retry.MaxDelay)
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// newKey returns a 128-bit random idempotency key.
func newKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to time-seeded.
		return fmt.Sprintf("key-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
