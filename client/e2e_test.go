package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tdac/internal/server"
	"tdac/internal/wal"
)

// These tests drive a real in-process tdacd through the retrying
// client: the happy path, idempotent re-submission against the live
// dedupe, and retry-until-capacity against a saturated queue.

func e2eServer(t *testing.T, cfg server.Config) (*server.Server, *Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	c, err := New(ts.URL, WithRetry(Retry{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func seedClaims() []Claim {
	var claims []Claim
	for _, src := range []string{"s1", "s2", "s3"} {
		for _, obj := range []string{"o1", "o2"} {
			claims = append(claims,
				Claim{Source: src, Object: obj, Attribute: "colour", Value: "red"},
				Claim{Source: src, Object: obj, Attribute: "size", Value: "10"},
			)
		}
	}
	return claims
}

func TestEndToEndDiscovery(t *testing.T) {
	_, c := e2eServer(t, server.Config{Workers: 2, QueueSize: 8})
	ctx := context.Background()

	if _, err := c.CreateDataset(ctx, "exam"); err != nil {
		t.Fatal(err)
	}
	info, err := c.Ingest(ctx, "exam", seedClaims(), []Truth{{Object: "o1", Attribute: "colour", Value: "red"}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Claims != 12 {
		t.Fatalf("ingest info = %+v", info)
	}
	job, err := c.Run(ctx, "exam", DiscoverRequest{Mode: "base", Algorithm: "Accu"})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Result.Truth) == 0 || len(job.Result.Trust) != 3 {
		t.Fatalf("result = %+v", job.Result)
	}

	// Cancelling the finished job surfaces the typed 409.
	_, err = c.CancelJob(ctx, job.ID)
	if state, ok := IsTerminalConflict(err); !ok || state != "done" {
		t.Fatalf("cancel finished job: err=%v state=%q", err, state)
	}
}

func TestEndToEndIdempotentResubmit(t *testing.T) {
	s, c := e2eServer(t, server.Config{Workers: 1, QueueSize: 8})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, "d", seedClaims(), nil); err != nil {
		t.Fatal(err)
	}

	req := DiscoverRequest{Mode: "base", Key: "stable-key"}
	first, err := c.Discover(ctx, "d", req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Discover(ctx, "d", req)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("resubmit created %s, want dedup onto %s", second.ID, first.ID)
	}
	if got := s.Engine().Counters().Enqueued; got != 1 {
		t.Fatalf("enqueued = %d, want 1", got)
	}
	if _, err := c.Wait(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndRetryThroughBackpressure saturates a 1-slot queue and
// lets the client's 429 retry loop win the race for the freed slot.
func TestEndToEndRetryThroughBackpressure(t *testing.T) {
	_, c := e2eServer(t, server.Config{Workers: 1, QueueSize: 1})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, "d", seedClaims(), nil); err != nil {
		t.Fatal(err)
	}

	// Fill the worker and the queue slot, then submit a third job: the
	// first attempts see 429 + Retry-After, and the retry loop lands it
	// once the pipeline drains.
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := c.Discover(ctx, "d", DiscoverRequest{Mode: "base"})
		if err != nil {
			t.Fatalf("discover %d: %v", i, err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		job, err := c.Wait(ctx, id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != "done" {
			t.Fatalf("job %s finished %s: %s", id, job.State, job.Error)
		}
	}
}

// TestEndToEndDurableRestart ties the client to the WAL: jobs submitted
// with client keys survive a server restart and dedupe across it.
func TestEndToEndDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Workers: 1, QueueSize: 8, DataDir: dir, Fsync: wal.SyncAlways}
	s1, c1 := e2eServer(t, cfg)
	ctx := context.Background()
	if _, err := c1.CreateDataset(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Ingest(ctx, "d", seedClaims(), nil); err != nil {
		t.Fatal(err)
	}
	job, err := c1.Run(ctx, "d", DiscoverRequest{Mode: "base", Key: "run-1"})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" {
		t.Fatalf("job = %+v", job)
	}
	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_ = s1.Shutdown(shutCtx)

	// A second server on the same directory recovers the dataset; the
	// finished job journaled its end, so the key is free again.
	_, c2 := e2eServer(t, cfg)
	info, err := c2.GetDataset(ctx, "d")
	if err != nil {
		t.Fatalf("dataset lost across restart: %v", err)
	}
	if info.Version != 2 || info.Claims != 12 {
		t.Fatalf("recovered info = %+v", info)
	}
	again, err := c2.Run(ctx, "d", DiscoverRequest{Mode: "base", Key: "run-1"})
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" {
		t.Fatalf("rerun after restart = %+v", again)
	}
}
