package tdac_test

import (
	"strings"
	"testing"

	"tdac"
)

// TestBaseOptionsThroughWithBase exercises the tuned-base surface: the
// options must reach the algorithm (a 1-iteration cap is observable),
// and an option the named algorithm cannot honour must fail the entry
// point by name instead of being dropped.
func TestBaseOptionsThroughWithBase(t *testing.T) {
	d := publicDataset(t, 12, 6)

	tuned, err := tdac.Run(d, "TruthFinder",
		tdac.WithBase("TruthFinder", tdac.WithMaxIterations(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Iterations != 1 {
		t.Fatalf("WithMaxIterations(1) ignored: ran %d iterations", tuned.Iterations)
	}

	if _, err := tdac.Run(d, "TruthFinder", tdac.WithBase("Accu")); err == nil ||
		!strings.Contains(err.Error(), "must agree") {
		t.Fatalf("Run accepted a WithBase naming a different algorithm: %v", err)
	}

	// Discover with a tuned base and a tuned reference.
	if _, err := tdac.Discover(d,
		tdac.WithBase("Accu", tdac.WithMaxIterations(3), tdac.WithEpsilon(1e-2), tdac.WithInitialAccuracy(0.7)),
		tdac.WithReference("MajorityVote")); err != nil {
		t.Fatal(err)
	}

	// Unsupported options are rejected by option name.
	_, err = tdac.Discover(d, tdac.WithBase("Accu", tdac.WithSimilarity(func(a, b string) float64 { return 1 })))
	if err == nil || !strings.Contains(err.Error(), "WithSimilarity") {
		t.Fatalf("Accu accepted WithSimilarity: %v", err)
	}
	_, err = tdac.Discover(d, tdac.WithBase("MajorityVote", tdac.WithMaxIterations(5)))
	if err == nil || !strings.Contains(err.Error(), "WithMaxIterations") {
		t.Fatalf("MajorityVote accepted WithMaxIterations: %v", err)
	}

	// Invalid option values fail fast.
	if _, err := tdac.Discover(d, tdac.WithBase("Accu", tdac.WithMaxIterations(0))); err == nil {
		t.Error("accepted WithMaxIterations(0)")
	}
	if _, err := tdac.Discover(d, tdac.WithBase("Accu", tdac.WithEpsilon(0))); err == nil {
		t.Error("accepted WithEpsilon(0)")
	}
	if _, err := tdac.Discover(d, tdac.WithBase("Accu", tdac.WithInitialAccuracy(1))); err == nil {
		t.Error("accepted WithInitialAccuracy(1)")
	}
	if _, err := tdac.Discover(d, tdac.WithBase("TruthFinder", tdac.WithSimilarity(nil))); err == nil {
		t.Error("accepted WithSimilarity(nil)")
	}

	// ValidateOptions sees the same errors without running anything.
	exact := func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	if err := tdac.ValidateOptions(tdac.WithBase("Accu", tdac.WithSimilarity(exact))); err == nil {
		t.Error("ValidateOptions accepted similarity on Accu")
	}
}

// TestOptionValidationMessages pins the descriptive rejection text of
// the option constructors: every invalid value must name the option, the
// offending bounds and the way out. A table, so a reworded error is a
// conscious decision.
func TestOptionValidationMessages(t *testing.T) {
	cases := []struct {
		name string
		opt  tdac.Option
		want string
	}{
		{"krange-min-too-small", tdac.WithKRange(1, 5), "minK must be at least 2"},
		{"krange-min-zero", tdac.WithKRange(0, 0), "minK must be at least 2"},
		{"krange-min-negative", tdac.WithKRange(-2, 5), "minK must be at least 2"},
		{"krange-max-negative", tdac.WithKRange(2, -1), "maxK cannot be negative"},
		{"krange-inverted", tdac.WithKRange(4, 3), "inverted range"},
		{"search-unknown", tdac.WithSearch("bisect"), `unknown strategy (known: "exhaustive", "golden", "mdl")`},
		{"search-empty", tdac.WithSearch(""), "unknown strategy"},
		{"workers-negative", tdac.WithWorkers(-1), "cannot be negative"},
		{"projection-zero", tdac.WithProjection(0), "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tdac.ValidateOptions(tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	// The valid shapes still pass validation.
	for _, opt := range []tdac.Option{
		tdac.WithKRange(2, 0),
		tdac.WithKRange(3, 3),
		tdac.WithSearch(tdac.SearchExhaustive),
		tdac.WithSearch(tdac.SearchGolden),
		tdac.WithSearch(tdac.SearchMDL),
	} {
		if err := tdac.ValidateOptions(opt); err != nil {
			t.Errorf("valid option rejected: %v", err)
		}
	}

	// Cross-option conflicts surface at validation time too — the
	// submit-time guard serving frontends rely on.
	if err := tdac.ValidateOptions(tdac.WithSearch(tdac.SearchGolden), tdac.WithSparseAware()); err == nil ||
		!strings.Contains(err.Error(), "WithSparseAware") {
		t.Errorf("search + sparse-aware: err = %v", err)
	}
}

// TestDiscoverWithSearch exercises the sublinear strategies end to end
// through the public API: same partition as the exhaustive default,
// deterministic across calls.
func TestDiscoverWithSearch(t *testing.T) {
	d := publicDataset(t, 50, 11)
	full, err := tdac.Discover(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{tdac.SearchGolden, tdac.SearchMDL} {
		a, err := tdac.Discover(d, tdac.WithSearch(strategy))
		if err != nil {
			t.Fatalf("WithSearch(%q): %v", strategy, err)
		}
		if !a.Partition.Equal(full.Partition) {
			t.Errorf("%s partition %s != exhaustive %s", strategy, a.Partition, full.Partition)
		}
		b, err := tdac.Discover(d, tdac.WithSearch(strategy))
		if err != nil {
			t.Fatal(err)
		}
		if !a.Partition.Equal(b.Partition) || a.Silhouette != b.Silhouette {
			t.Errorf("WithSearch(%q) is not deterministic", strategy)
		}
	}
	// The explicit exhaustive name is the default, bit-identical.
	exh, err := tdac.Discover(d, tdac.WithSearch(tdac.SearchExhaustive))
	if err != nil {
		t.Fatal(err)
	}
	if !exh.Partition.Equal(full.Partition) || exh.Silhouette != full.Silhouette {
		t.Error(`WithSearch("exhaustive") differs from the default sweep`)
	}
}

// TestSimilarityByName pins the registry the serving frontends consume.
func TestSimilarityByName(t *testing.T) {
	for _, name := range []string{"exact", "levenshtein", "numeric", "jaccard"} {
		f, ok := tdac.SimilarityByName(name)
		if !ok || f == nil {
			t.Errorf("SimilarityByName(%q) unknown", name)
			continue
		}
		if got := f("same", "same"); got != 1 {
			t.Errorf("%s(same, same) = %v, want 1", name, got)
		}
	}
	if _, ok := tdac.SimilarityByName("nope"); ok {
		t.Error("SimilarityByName accepted an unknown name")
	}

	d := publicDataset(t, 10, 7)
	sim, _ := tdac.SimilarityByName("levenshtein")
	if _, err := tdac.Run(d, "AccuSim",
		tdac.WithBase("AccuSim", tdac.WithSimilarity(sim))); err != nil {
		t.Fatal(err)
	}
}
