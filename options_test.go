package tdac_test

import (
	"strings"
	"testing"

	"tdac"
)

// TestBaseOptionsThroughWithBase exercises the tuned-base surface: the
// options must reach the algorithm (a 1-iteration cap is observable),
// and an option the named algorithm cannot honour must fail the entry
// point by name instead of being dropped.
func TestBaseOptionsThroughWithBase(t *testing.T) {
	d := publicDataset(t, 12, 6)

	tuned, err := tdac.Run(d, "TruthFinder",
		tdac.WithBase("TruthFinder", tdac.WithMaxIterations(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Iterations != 1 {
		t.Fatalf("WithMaxIterations(1) ignored: ran %d iterations", tuned.Iterations)
	}

	if _, err := tdac.Run(d, "TruthFinder", tdac.WithBase("Accu")); err == nil ||
		!strings.Contains(err.Error(), "must agree") {
		t.Fatalf("Run accepted a WithBase naming a different algorithm: %v", err)
	}

	// Discover with a tuned base and a tuned reference.
	if _, err := tdac.Discover(d,
		tdac.WithBase("Accu", tdac.WithMaxIterations(3), tdac.WithEpsilon(1e-2), tdac.WithInitialAccuracy(0.7)),
		tdac.WithReference("MajorityVote")); err != nil {
		t.Fatal(err)
	}

	// Unsupported options are rejected by option name.
	_, err = tdac.Discover(d, tdac.WithBase("Accu", tdac.WithSimilarity(func(a, b string) float64 { return 1 })))
	if err == nil || !strings.Contains(err.Error(), "WithSimilarity") {
		t.Fatalf("Accu accepted WithSimilarity: %v", err)
	}
	_, err = tdac.Discover(d, tdac.WithBase("MajorityVote", tdac.WithMaxIterations(5)))
	if err == nil || !strings.Contains(err.Error(), "WithMaxIterations") {
		t.Fatalf("MajorityVote accepted WithMaxIterations: %v", err)
	}

	// Invalid option values fail fast.
	if _, err := tdac.Discover(d, tdac.WithBase("Accu", tdac.WithMaxIterations(0))); err == nil {
		t.Error("accepted WithMaxIterations(0)")
	}
	if _, err := tdac.Discover(d, tdac.WithBase("Accu", tdac.WithEpsilon(0))); err == nil {
		t.Error("accepted WithEpsilon(0)")
	}
	if _, err := tdac.Discover(d, tdac.WithBase("Accu", tdac.WithInitialAccuracy(1))); err == nil {
		t.Error("accepted WithInitialAccuracy(1)")
	}
	if _, err := tdac.Discover(d, tdac.WithBase("TruthFinder", tdac.WithSimilarity(nil))); err == nil {
		t.Error("accepted WithSimilarity(nil)")
	}

	// ValidateOptions sees the same errors without running anything.
	exact := func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	if err := tdac.ValidateOptions(tdac.WithBase("Accu", tdac.WithSimilarity(exact))); err == nil {
		t.Error("ValidateOptions accepted similarity on Accu")
	}
}

// TestSimilarityByName pins the registry the serving frontends consume.
func TestSimilarityByName(t *testing.T) {
	for _, name := range []string{"exact", "levenshtein", "numeric", "jaccard"} {
		f, ok := tdac.SimilarityByName(name)
		if !ok || f == nil {
			t.Errorf("SimilarityByName(%q) unknown", name)
			continue
		}
		if got := f("same", "same"); got != 1 {
			t.Errorf("%s(same, same) = %v, want 1", name, got)
		}
	}
	if _, ok := tdac.SimilarityByName("nope"); ok {
		t.Error("SimilarityByName accepted an unknown name")
	}

	d := publicDataset(t, 10, 7)
	sim, _ := tdac.SimilarityByName("levenshtein")
	if _, err := tdac.Run(d, "AccuSim",
		tdac.WithBase("AccuSim", tdac.WithSimilarity(sim))); err != nil {
		t.Fatal(err)
	}
}
