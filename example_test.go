package tdac_test

import (
	"fmt"
	"log"

	"tdac"
)

// ExampleDiscover runs TD-AC on the paper's Table 1 running example: two
// topics (football and computer science) whose questions are answered by
// three sources with topic-dependent reliability.
func ExampleDiscover() {
	b := tdac.NewBuilder("table1")
	claims := []struct{ source, object, attr, value string }{
		{"source-1", "FB", "Q1", "Algeria"},
		{"source-1", "FB", "Q2", "2000"},
		{"source-1", "FB", "Q3", "11"},
		{"source-2", "FB", "Q1", "Senegal"},
		{"source-2", "FB", "Q2", "2019"},
		{"source-2", "FB", "Q3", "12"},
		{"source-3", "FB", "Q1", "Algeria"},
		{"source-3", "FB", "Q2", "1994"},
		{"source-3", "FB", "Q3", "11"},
		{"source-1", "CS", "Q1", "Linus Torvalds"},
		{"source-1", "CS", "Q2", "1830"},
		{"source-1", "CS", "Q3", "7"},
		{"source-2", "CS", "Q1", "Linus Torvalds"},
		{"source-2", "CS", "Q2", "1991"},
		{"source-2", "CS", "Q3", "7"},
		{"source-3", "CS", "Q1", "Steve Jobs"},
		{"source-3", "CS", "Q2", "1991"},
		{"source-3", "CS", "Q3", "10"},
	}
	for _, c := range claims {
		b.Claim(c.source, c.object, c.attr, c.value)
	}
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := tdac.Discover(ds, tdac.WithBase("TruthFinder"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FB/Q1 =", res.Truth[tdac.Cell{Object: 0, Attr: 0}])
	fmt.Println("groups:", len(res.Partition))
	// Output:
	// FB/Q1 = Algeria
	// groups: 2
}

// ExampleRun executes a single base algorithm without attribute
// partitioning.
func ExampleRun() {
	b := tdac.NewBuilder("votes")
	b.Claim("s1", "city", "capital", "Dakar")
	b.Claim("s2", "city", "capital", "Dakar")
	b.Claim("s3", "city", "capital", "Thies")
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := tdac.Run(ds, "MajorityVote")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Truth[tdac.Cell{}])
	// Output: Dakar
}

// ExampleEvaluate scores predictions against known ground truth with the
// paper's metrics.
func ExampleEvaluate() {
	b := tdac.NewBuilder("eval")
	b.Claim("s1", "o", "a", "right")
	b.Claim("s2", "o", "a", "wrong")
	b.Claim("s3", "o", "a", "right")
	b.Truth("o", "a", "right")
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := tdac.Run(ds, "MajorityVote")
	if err != nil {
		log.Fatal(err)
	}
	rep := tdac.Evaluate(ds, res.Truth)
	fmt.Printf("accuracy %.2f cell-accuracy %.2f\n", rep.Accuracy, rep.CellAccuracy)
	// Output: accuracy 1.00 cell-accuracy 1.00
}

// ExampleComputeStats reports Table 8-style statistics, including the
// data coverage rate of Equation 7.
func ExampleComputeStats() {
	b := tdac.NewBuilder("demo")
	b.Claim("s1", "o", "a1", "v")
	b.Claim("s1", "o", "a2", "v")
	b.Claim("s2", "o", "a1", "v")
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tdac.ComputeStats(ds))
	// Output: demo: 2 sources, 1 objects, 2 attrs, 3 observations, DCR=75%
}
